#include "engine/parallel_search_engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "common/logging.h"
#include "common/strings.h"
#include "engine/maintenance_engine.h"
#include "sim/completion_latch.h"

namespace caram::engine {

namespace {

/** CARAM_ROW_FANOUT_MIN parsed fresh on every call (i.e. at each
 *  engine's construction) -- a function-local cache would pin whatever
 *  value the first engine in the process saw and silently ignore later
 *  environment changes, which broke tests that build engines under
 *  different settings.  nullopt = unset/garbage (garbage warns once per
 *  process).  The forced-fan-out CI leg sets it to 1 so every engine in
 *  the test suite routes lookups through the shard scheduler. */
std::optional<unsigned>
envRowFanoutMin()
{
    const char *env = std::getenv("CARAM_ROW_FANOUT_MIN");
    if (!env || !*env)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("CARAM_ROW_FANOUT_MIN=%s is not a number; "
                           "fan-out stays config-controlled",
                           env));
        return std::nullopt;
    }
    return static_cast<unsigned>(v);
}

/** CARAM_RESULT_CACHE_ENTRIES, parsed fresh on every call like
 *  CARAM_ROW_FANOUT_MIN above.  The forced-cache CI leg sets it so
 *  every engine whose config leaves resultCacheEntries unset runs the
 *  whole suite with the hot-key cache on. */
std::optional<std::size_t>
envResultCacheEntries()
{
    const char *env = std::getenv("CARAM_RESULT_CACHE_ENTRIES");
    if (!env || !*env)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("CARAM_RESULT_CACHE_ENTRIES=%s is not a "
                           "number; result cache stays "
                           "config-controlled",
                           env));
        return std::nullopt;
    }
    return static_cast<std::size_t>(v);
}

/** CARAM_WRITER_LANES, parsed fresh on every call like the knobs
 *  above.  The lane-forced CI leg sets it to 4 so every engine whose
 *  config leaves writerLanes at 0 spreads its ports over four writer
 *  threads. */
std::optional<unsigned>
envWriterLanes()
{
    const char *env = std::getenv("CARAM_WRITER_LANES");
    if (!env || !*env)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("CARAM_WRITER_LANES=%s is not a positive "
                           "number; writer lanes stay "
                           "config-controlled",
                           env));
        return std::nullopt;
    }
    return static_cast<unsigned>(v);
}

/** CARAM_PREFILTER, parsed fresh on every call like the knobs above.
 *  The forced-filter CI leg sets it to 1 so every engine whose config
 *  leaves `prefilter` unset runs the whole suite consulting the
 *  per-row pre-filter. */
std::optional<bool>
envPrefilter()
{
    const char *env = std::getenv("CARAM_PREFILTER");
    if (!env || !*env)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v > 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("CARAM_PREFILTER=%s is not 0 or 1; the "
                           "pre-filter stays config-controlled",
                           env));
        return std::nullopt;
    }
    return v != 0;
}

/** CARAM_MAINTENANCE, parsed fresh on every call like the knobs
 *  above.  The forced-maintenance CI leg sets it to 1 so every engine
 *  whose config leaves `maintenance` unset runs the whole suite with
 *  the background maintenance engine active. */
std::optional<bool>
envMaintenance()
{
    const char *env = std::getenv("CARAM_MAINTENANCE");
    if (!env || !*env)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v > 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("CARAM_MAINTENANCE=%s is not 0 or 1; "
                           "maintenance stays config-controlled",
                           env));
        return std::nullopt;
    }
    return v != 0;
}

} // namespace

/** A request travelling through a worker queue, stamped at enqueue. */
struct ParallelSearchEngine::Job
{
    core::PortRequest request;
    std::chrono::steady_clock::time_point enqueued;
};

/**
 * One shard of a fanned-out lookup: match @p count candidate home
 * chains starting at @p homes against the coordinator's packed key,
 * deposit the shard-best into @p out, and arrive at @p latch.  All
 * pointed-to state lives in the coordinating worker's scratch, which
 * stays pinned until the latch completes; the queue's mutex publishes
 * it to stealing workers.
 */
struct ParallelSearchEngine::FanoutTask
{
    core::CaRamSlice *slice;
    const core::MatchProcessor::PackedKey *packed;
    const uint64_t *homes;
    unsigned count;
    core::SearchResult *out;
    sim::CompletionLatch *latch;
};

/** One writer-lane hand-off: a run of same-port non-Search jobs in
 *  submission order.  The receiving writer thread executes it with its
 *  own scratch (the lane's trailing Worker), drains any runs staged
 *  behind it, then clears the port's busy flag and rings the owner. */
struct ParallelSearchEngine::MutationRun
{
    std::vector<Job> jobs;
};

/** Per-port result stream and instrumentation. */
struct ParallelSearchEngine::PortState
{
    std::mutex resultMutex;
    std::deque<core::PortResponse> results;
    PortStats stats;
    /** concurrentMutation hand-off flag: true from the moment the
     *  owning worker passes a mutation run to the writer lane until the
     *  writer releases the port.  Set by the owner (release), cleared
     *  by the writer (release), read by the owner (acquire) -- the
     *  clear/read pair is what serializes the two threads' access to
     *  the port's database and non-atomic stats aggregates. */
    std::atomic<bool> busy{false};
    /** Jobs deferred while the writer lane holds the port, in
     *  submission order.  Touched only by the owning worker. */
    std::deque<Job> pending;
    /**
     * Writer-combining staging: mutation runs the owner appended while
     * the port's lane was already executing a hand-off for it.  The
     * protocol that makes staging race-free: the owner appends only
     * after re-checking `busy` under stageMutex, and the lane clears
     * `busy` under the same mutex only when the staging is empty -- so
     * every appended run is drained by the current hand-off, in
     * submission order, before the port is released.  Staging is only
     * entered while `pending` is empty, so a staged mutation can never
     * jump ahead of a deferred search.
     */
    std::mutex stageMutex;
    std::deque<MutationRun> staged;
    /** Cached Database::searchBandwidthMsps (bit-cast double), written
     *  by refreshAnalyticBounds() at quiesced points and read by
     *  report() -- the live computation would read non-atomic slice
     *  load statistics under writer-lane/maintenance mutation. */
    std::atomic<uint64_t> analyticBoundBits{0};
    /** Pre-filter consult/skip totals (main + overflow slice), also
     *  snapshot at quiesced points: the counters live on the slice
     *  object itself, and a lane-executed rebuildSwap replaces that
     *  object under report()'s feet. */
    std::atomic<uint64_t> prefilterProbesSnap{0};
    std::atomic<uint64_t> prefilterSkipsSnap{0};
};

/** One worker: its request queue and its private modeled clock. */
struct ParallelSearchEngine::Worker
{
    explicit Worker(std::size_t capacity) : queue(capacity) {}
    sim::ConcurrentBoundedQueue<Job> queue;
    /** Busy cycles of this worker's modeled input controller.  Atomic
     *  (like the run counters below) because report() sums them while
     *  the run is still in flight. */
    std::atomic<uint64_t> modeledCycles{0};
    /** Batched-run scratch (sized once, reused across runs). */
    std::vector<const Key *> keyPtrs;
    std::vector<core::SearchResult> batchResults;
    /** Bulk-ingest scratch (sized once, reused across runs). */
    std::vector<core::Record> records;
    std::vector<int> priorities;
    std::vector<core::InsertOutcome> outcomes;
    /** Merged row-op accounting of this worker's insert runs, under
     *  ingestMutex (a struct of counters cannot be read atomically). */
    std::mutex ingestMutex;
    core::InsertBatchSummary ingest;
    /** Run counters (EngineReport). */
    std::atomic<uint64_t> batchedSearchRuns{0};
    std::atomic<uint64_t> adaptiveSerialRuns{0};
    std::atomic<uint64_t> batchedInsertRuns{0};
    /** Mutation runs this worker appended to a busy port's staging
     *  deque (writer combining) instead of a fresh hand-off. */
    std::atomic<uint64_t> stagedRuns{0};
    /** Result-cache stamping scratch: candidate-home scratch for
     *  Database::searchRegionMask, and the per-key region masks /
     *  stamps of one batched segment (captured before the slice
     *  search runs). */
    std::vector<uint64_t> maskHomes;
    std::vector<uint64_t> fillMasks;
    std::vector<uint64_t> fillStamps;
    /** Adaptive controller: smoothed keys-per-fetch of recent batched
     *  runs, and search runs left in the current serial back-off. */
    double sharingEwma = 0.0;
    bool sharingSeeded = false;
    unsigned serialHold = 0;
    /** Fan-out coordinator scratch: the packed key every shard reads,
     *  the candidate home rows, and one result slot per shard.  All
     *  pre-sized after the first fan-out, so steady-state fan-out
     *  lookups allocate nothing -- and strictly worker-local, never
     *  the slice's own scratch (CaRamSlice's single-owner rule). */
    core::MatchProcessor::PackedKey fanoutPacked;
    std::vector<uint64_t> fanoutHomes;
    std::array<core::SearchResult, kMaxFanoutShards> shardResults;
    sim::CompletionLatch fanoutLatch;
    /** Fan-out counters (EngineReport). */
    std::atomic<uint64_t> fanoutLookups{0};
    std::atomic<uint64_t> fanoutShards{0};
    std::atomic<uint64_t> fanoutSerialFallbacks{0};
    /** Doorbell: the worker parks here when both its request queue and
     *  the shared shard queue are empty; producers ring after pushing. */
    std::mutex bellMutex;
    std::condition_variable bell;
};

ParallelSearchEngine::ParallelSearchEngine(core::CaRamSubsystem &subsystem,
                                           EngineConfig config)
    : sys(&subsystem), cfg(config),
      workerCount(std::max(1u, cfg.workers))
{
    if (sys->databaseCount() == 0)
        fatal("parallel search engine needs at least one database");
    if (cfg.queueCapacity == 0)
        fatal("engine queue capacity must be nonzero");
    if (cfg.drainBatch == 0)
        cfg.drainBatch = 1;
    if (cfg.workers == 0)
        cfg.concurrentMutation = false; // inline mode is serial already
    // Writer lanes: an explicit config value always wins over the
    // environment; 0 defers to CARAM_WRITER_LANES, unset resolves to
    // the single PR 6 lane.
    if (cfg.concurrentMutation) {
        unsigned lanes = cfg.writerLanes;
        if (lanes == 0)
            lanes = envWriterLanes().value_or(1);
        writerLaneCount_ = std::clamp(lanes, 1u, 16u);
    }
    cfg.rowFanoutMaxShards =
        std::clamp(cfg.rowFanoutMaxShards, 1u, kMaxFanoutShards);
    rowFanoutMin_ = cfg.rowFanoutMin;
    if (rowFanoutMin_ == 0) {
        if (const auto env = envRowFanoutMin())
            rowFanoutMin_ = *env;
    }
    // Result cache: an explicit config value (including an explicit 0,
    // which pins the cache off) always wins over the environment.
    std::size_t cache_entries = cfg.resultCacheEntries.value_or(0);
    if (!cfg.resultCacheEntries.has_value()) {
        if (const auto env = envResultCacheEntries())
            cache_entries = *env;
    }
    if (cache_entries > 0) {
        resultCache_ = std::make_unique<ResultCache>(
            cache_entries, cfg.resultCacheWays,
            static_cast<unsigned>(sys->databaseCount()));
    }
    // Pre-filter: an explicit config value (including an explicit
    // false, which pins the filter off) always wins over the
    // environment.  The flag lives on the slices themselves, so
    // rebuildSwap() replacements inherit it without engine help.
    prefilter_ = cfg.prefilter.value_or(false);
    if (!cfg.prefilter.has_value()) {
        if (const auto env = envPrefilter())
            prefilter_ = *env;
    }
    for (std::size_t p = 0; p < sys->databaseCount(); ++p) {
        sys->database(static_cast<unsigned>(p))
            .setPrefilterEnabled(prefilter_);
    }
    // Maintenance: an explicit config value (including an explicit
    // false, which pins it off) always wins over the environment.
    // Inline mode has no background execution authority, so the knob
    // is ignored there regardless of source.
    bool maintenance = cfg.maintenance.value_or(false);
    if (!cfg.maintenance.has_value()) {
        if (const auto env = envMaintenance())
            maintenance = *env;
    }
    if (cfg.workers == 0)
        maintenance = false;
    if (maintenance)
        maintenance_ = std::make_unique<MaintenanceEngine>(*this);
    fanoutTasks = std::make_unique<sim::ConcurrentBoundedQueue<FanoutTask>>(
        std::max<std::size_t>(16,
                              std::size_t{workerCount} *
                                  cfg.rowFanoutMaxShards));
    for (std::size_t p = 0; p < sys->databaseCount(); ++p)
        ports.push_back(std::make_unique<PortState>());
    refreshAnalyticBounds(); // pre-thread: nothing can be mutating yet
    for (unsigned w = 0; w < workerCount; ++w)
        workers.push_back(std::make_unique<Worker>(cfg.queueCapacity));
    if (cfg.concurrentMutation) {
        for (unsigned l = 0; l < writerLaneCount_; ++l) {
            writerQueues.push_back(
                std::make_unique<sim::ConcurrentBoundedQueue<MutationRun>>(
                    std::max<std::size_t>(16, ports.size())));
            // Each lane's scratch and counters live in one trailing
            // Worker (index workerCount + lane, request queue unused)
            // so report() folds its modeled cycles and ingest
            // accounting in unchanged.
            workers.push_back(std::make_unique<Worker>(1));
        }
    }
    wallStart = std::chrono::steady_clock::now();
}

ParallelSearchEngine::~ParallelSearchEngine()
{
    stop();
}

unsigned
ParallelSearchEngine::workerOf(unsigned port) const
{
    return port % workerCount;
}

void
ParallelSearchEngine::start()
{
    if (running || stopped || cfg.workers == 0)
        return;
    running = true;
    wallStart = std::chrono::steady_clock::now();
    for (unsigned w = 0; w < cfg.workers; ++w)
        threads.emplace_back([this, w] { workerMain(w); });
    for (unsigned l = 0; l < writerLaneCount_; ++l)
        writerThreads.emplace_back([this, l] { writerMain(l); });
    if (maintenance_)
        maintenance_->start();
}

void
ParallelSearchEngine::finishResponse(
    core::PortResponse resp,
    std::chrono::steady_clock::time_point enqueued)
{
    PortState &port = *ports[resp.port];
    const bool hit = resp.hit;
    const bool ok = resp.ok;
    if (resp.op == core::PortOp::Search)
        port.stats.bucketsAccessed.add(resp.bucketsAccessed);

    const auto now = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             enqueued)
            .count() /
        1e3;
    port.stats.latencyUs.add(us);
    port.stats.latencyLog2Us.add(
        static_cast<uint64_t>(std::floor(std::log2(1.0 + us))));

    {
        std::lock_guard<std::mutex> lock(port.resultMutex);
        port.results.push_back(std::move(resp));
    }

    // Push the wall-clock end stamp (monotonic max -- completions from
    // different threads finish out of order) *before* advancing the
    // completion counters: report() reads `completed` first, so every
    // completion it counts has already published its end stamp, and a
    // mid-run wallMsps can understate but never inflate the
    // throughput.  The old order paired a fresh completed count with a
    // stale end stamp.
    const uint64_t end_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             wallStart)
            .count());
    uint64_t prev = wallEndNs.load(std::memory_order_relaxed);
    while (prev < end_ns &&
           !wallEndNs.compare_exchange_weak(prev, end_ns,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
    }
    if (hit)
        port.stats.hits.fetch_add(1, std::memory_order_relaxed);
    if (!ok)
        port.stats.errors.fetch_add(1, std::memory_order_relaxed);
    port.stats.completed.fetch_add(1, std::memory_order_release);
}

bool
ParallelSearchEngine::fanoutEligible(core::Database &db, const Key &key,
                                     Worker &self)
{
    if (rowFanoutMin_ == 0)
        return false;
    // Fully specified keys have exactly one candidate home: only a
    // forced threshold of <= 1 routes them through the shard scheduler
    // (single-shard coverage of the fan-out machinery).
    if (rowFanoutMin_ > 1 && key.fullySpecified())
        return false;
    if (key.bits() != db.slice().config().logicalKeyBits)
        return false; // let the serial path report the width mismatch
    db.slice().candidateHomes(key, self.fanoutHomes);
    // Shard pruning: homes whose whole chain the filter proves empty
    // never become sub-tasks (they contribute zero accesses either
    // way, so the merged result stays bit-identical to the serial
    // filtered walk).  A lookup pruned below the threshold falls back
    // to the serial path -- which skips the same rows.
    db.slice().prefilterPruneHomes(key, self.fanoutHomes);
    return self.fanoutHomes.size() >= rowFanoutMin_;
}

void
ParallelSearchEngine::runFanoutTask(const FanoutTask &task)
{
    *task.out = task.slice->searchRows(*task.packed, task.homes,
                                       task.count);
    task.latch->arrive();
}

void
ParallelSearchEngine::executeFanoutSearch(
    core::Database &db, const core::PortRequest &request,
    std::chrono::steady_clock::time_point enqueued, unsigned worker_index)
{
    Worker &self = *workers[worker_index];
    core::CaRamSlice &sl = db.slice();
    // Stamp capture before any shard touches the table.  The region
    // mask is recomputed from the FULL candidate home set -- the
    // pruned fanoutHomes scratch is not enough, because a pre-filter-
    // pruned home that later gains a matching record must still
    // invalidate this entry.
    uint64_t cache_mask = 0;
    uint64_t cache_stamp = 0;
    if (resultCache_) {
        cache_mask = db.searchRegionMask(request.key, self.maskHomes);
        cache_stamp =
            resultCache_->captureStamp(request.port, cache_mask);
    }
    const auto nhomes = static_cast<unsigned>(self.fanoutHomes.size());
    const unsigned nshards = std::min(cfg.rowFanoutMaxShards, nhomes);
    self.fanoutLookups.fetch_add(1, std::memory_order_relaxed);
    if (nshards <= 1)
        self.fanoutSerialFallbacks.fetch_add(1,
                                             std::memory_order_relaxed);
    else
        self.fanoutShards.fetch_add(nshards, std::memory_order_relaxed);

    sl.packSearchKey(request.key, self.fanoutPacked);
    self.fanoutLatch.reset(nshards);
    const uint64_t *homes = self.fanoutHomes.data();
    const unsigned base = nhomes / nshards;
    const unsigned rem = nhomes % nshards;
    // Shard 0 (the first home range) runs on this thread; the rest go
    // to the shared sub-task queue for idle workers to steal.  A full
    // queue just means this shard runs here too -- the push never
    // blocks, so fan-out cannot deadlock.
    const unsigned local_count = base + (0 < rem ? 1 : 0);
    unsigned offset = local_count;
    for (unsigned s = 1; s < nshards; ++s) {
        const unsigned count = base + (s < rem ? 1 : 0);
        const FanoutTask task{&sl,
                              &self.fanoutPacked,
                              homes + offset,
                              count,
                              &self.shardResults[s],
                              &self.fanoutLatch};
        offset += count;
        if (cfg.workers == 0 || !fanoutTasks->tryPush(task))
            runFanoutTask(task);
    }
    if (nshards > 1 && cfg.workers != 0)
        ringAll();
    self.shardResults[0] =
        sl.searchRows(self.fanoutPacked, homes, local_count);
    self.fanoutLatch.arrive();
    // Help-first join: while our shards are outstanding, run queued
    // shard tasks (ours or another coordinator's) instead of blocking.
    // Shard tasks never block or fan out themselves, so every queued
    // task makes progress even when all workers coordinate lookups at
    // once; once the queue is empty our remaining shards are already
    // running on other workers and the wait is finite.
    while (!self.fanoutLatch.tryWait()) {
        if (const auto task = fanoutTasks->tryPop())
            runFanoutTask(*task);
        else
            self.fanoutLatch.wait();
    }

    core::SearchResult merged = core::CaRamSlice::mergeShardResults(
        self.shardResults.data(), nshards, sl.config().lpm);
    // The slice's counters advance exactly as one serial search()
    // reporting this many accesses would (we are the port's owning
    // worker, so the single-owner rule holds).
    sl.noteFanoutSearch(merged.bucketsAccessed);
    uint64_t slowest = 0;
    for (unsigned s = 0; s < nshards; ++s)
        slowest = std::max<uint64_t>(slowest,
                                     self.shardResults[s].bucketsAccessed);
    const uint64_t overflow_fetches =
        db.mergeOverflowResult(request.key, merged);
    if (resultCache_)
        resultCache_->fill(request.port, request.key, merged,
                           cache_stamp, cache_mask);

    // Modeled cost: the shards fetch from independent banks
    // simultaneously (the paper's multi-bank overlap), so the lookup
    // occupies the port for the *slowest* shard's chain -- including
    // shards the serial early exit would have skipped, because the
    // hardware dispatches every bank before any verdict is known.  A
    // parallel overflow area overlaps the same way.
    const uint64_t accesses =
        std::max<uint64_t>(1, std::max(slowest, overflow_fetches));
    const uint64_t cycles =
        accesses * std::max(1u, cfg.timing.minCycleGap);
    PortState &port = *ports[request.port];
    port.stats.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);
    self.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);

    core::PortResponse resp;
    resp.tag = request.tag;
    resp.port = request.port;
    resp.op = core::PortOp::Search;
    resp.hit = merged.hit;
    resp.data = merged.data;
    resp.key = merged.key;
    resp.bucketsAccessed = merged.bucketsAccessed;
    finishResponse(std::move(resp), enqueued);
}

bool
ParallelSearchEngine::probeCache(const core::PortRequest &request,
                                 core::SearchResult &out)
{
    if (!resultCache_)
        return false;
    PortStats &stats = ports[request.port]->stats;
    if (resultCache_->probe(request.port, request.key, out)) {
        stats.cacheHits.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    stats.cacheMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ParallelSearchEngine::publishCached(
    const core::PortRequest &request, const core::SearchResult &cached,
    std::chrono::steady_clock::time_point enqueued)
{
    // Zero modeled cycles: the cached reply activates no rows, so the
    // port's bank is never occupied -- this is the entire throughput
    // claim of the hot-key cache.  The response fields (including the
    // replayed bucketsAccessed, which keeps the AMAL histogram
    // identical to the uncached engine's) are bit-identical to what
    // the slice search would have produced on the unmutated table.
    core::PortResponse resp;
    resp.tag = request.tag;
    resp.port = request.port;
    resp.op = core::PortOp::Search;
    resp.hit = cached.hit;
    resp.data = cached.data;
    resp.key = cached.key;
    resp.bucketsAccessed = cached.bucketsAccessed;
    finishResponse(std::move(resp), enqueued);
}

void
ParallelSearchEngine::invalidateCache(unsigned port, bool wholePort)
{
    if (!resultCache_)
        return;
    // The mutation already executed: drain the rows it dirtied and
    // bump exactly their regions (rebuilds and bulk loads bump the
    // whole port -- a repack moves records between rows wholesale, so
    // even an untouched region's cached bucketsAccessed could change).
    // Bumping *after* the mutation is safe because the port's requests
    // are serialized -- by the owning worker in inline/blocking mode,
    // and by the busy-flag hand-off under concurrentMutation -- so no
    // probe of this port can run between the mutation and the bump.
    // The dirty mask is drained even on the whole-port path so stale
    // bits never leak into a later mutation's bump.
    const uint64_t dirty = sys->database(port).takeDirtyRegionMask();
    if (wholePort)
        resultCache_->invalidate(port);
    else
        resultCache_->invalidateRegions(port, dirty);
    ports[port]->stats.cacheInvalidations.fetch_add(
        1, std::memory_order_relaxed);
}

void
ParallelSearchEngine::execute(
    const core::PortRequest &request,
    std::chrono::steady_clock::time_point enqueued, unsigned worker_index)
{
    if (request.op == core::PortOp::Maintenance) {
        // Engine-internal maintenance step: runs here -- on the port's
        // execution authority, with the port checked out -- so the
        // writer lane stays the single mutation authority.  No
        // response, no per-port stats; the modeled row operations are
        // charged to the executing thread so the interference shows up
        // in modeled throughput.
        core::Database &db = sys->database(request.port);
        uint64_t row_ops = 0;
        if (maintenance_ &&
            db.powerState() == core::PowerState::Active)
            row_ops = maintenance_->executeStep(db, request.port);
        if (row_ops > 0) {
            invalidateCache(request.port, /*wholePort=*/false);
            const uint64_t cycles =
                row_ops * std::max(1u, cfg.timing.minCycleGap);
            workers[worker_index]->modeledCycles.fetch_add(
                cycles, std::memory_order_relaxed);
        }
        return;
    }
    // A user Erase or Rebuild must not observe the transient duplicate
    // of a tear-interrupted migration (the Erase would remove and
    // count both copies; a Rebuild would repack them into two live
    // records): retire the far copy first.
    if (maintenance_ && (request.op == core::PortOp::Erase ||
                         request.op == core::PortOp::Rebuild)) {
        core::Database &db = sys->database(request.port);
        if (db.powerState() == core::PowerState::Active)
            maintenance_->completePending(db, request.port);
    }
    if (request.op == core::PortOp::Search) {
        if (resultCache_ || rowFanoutMin_ > 0) {
            core::Database &db = sys->database(request.port);
            if (db.powerState() == core::PowerState::Active) {
                // Cache probe first: a hit short-circuits the slice
                // search *and* the fan-out machinery.
                core::SearchResult cached;
                if (probeCache(request, cached)) {
                    publishCached(request, cached, enqueued);
                    return;
                }
                if (rowFanoutMin_ > 0 &&
                    fanoutEligible(db, request.key,
                                   *workers[worker_index])) {
                    executeFanoutSearch(db, request, enqueued,
                                        worker_index);
                    return;
                }
            }
        }
    }
    // Stamp capture *before* the search runs: a mutation slipping in
    // between (impossible on the engine's serialized ports, but the
    // discipline is what the cache's coherence argument rests on)
    // would make the fill below unservable rather than stale.  The
    // region mask covers the lookup's full candidate home set; a
    // retained database or a width-mismatched key never reaches the
    // fill (resp.ok is false), so the mask is only computed when the
    // search will actually run.
    uint64_t cache_mask = 0;
    uint64_t cache_stamp = 0;
    core::Database &req_db = sys->database(request.port);
    if (resultCache_ && request.op == core::PortOp::Search &&
        req_db.powerState() == core::PowerState::Active &&
        request.key.bits() ==
            req_db.slice().config().logicalKeyBits) {
        cache_mask = req_db.searchRegionMask(
            request.key, workers[worker_index]->maskHomes);
        cache_stamp =
            resultCache_->captureStamp(request.port, cache_mask);
    }
    // Under concurrentMutation the engine's epoch domain rides along so
    // a Rebuild (which only ever executes on the writer lane in that
    // mode) becomes a non-blocking rebuildSwap; everything else, and
    // every request in the default mode, behaves exactly as before.
    core::PortResponse resp = core::executePortRequest(
        req_db, request,
        cfg.concurrentMutation ? &epochDomain_ : nullptr);
    if (request.op != core::PortOp::Search) {
        // Row-granular coherence: the mutation ran, its dirty rows are
        // known -- bump exactly their regions (whole port for Rebuild:
        // a repack can change any cached entry's bucketsAccessed).
        invalidateCache(request.port,
                        request.op == core::PortOp::Rebuild);
    } else if (resultCache_ && resp.ok) {
        core::SearchResult r;
        r.hit = resp.hit;
        r.data = resp.data;
        r.key = resp.key;
        r.bucketsAccessed = resp.bucketsAccessed;
        resultCache_->fill(request.port, request.key, r, cache_stamp,
                           cache_mask);
    }

    // Modeled cost: the lookup occupies this worker's bank for n_mem
    // cycles per bucket accessed (probe chains are sequential); every
    // request costs at least one access slot.
    const uint64_t accesses = std::max(1u, resp.bucketsAccessed);
    const uint64_t cycles =
        accesses * std::max(1u, cfg.timing.minCycleGap);

    PortState &port = *ports[request.port];
    port.stats.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);
    workers[worker_index]->modeledCycles.fetch_add(
        cycles, std::memory_order_relaxed);

    finishResponse(std::move(resp), enqueued);
}

void
ParallelSearchEngine::executeSearchRun(const Job *jobs, std::size_t count,
                                       unsigned worker_index)
{
    const unsigned port_no = jobs[0].request.port;
    core::Database &db = sys->database(port_no);
    if (db.powerState() != core::PowerState::Active) {
        // Retained database: fall back to the serial path, which
        // produces the per-request error responses.
        for (std::size_t i = 0; i < count; ++i)
            execute(jobs[i].request, jobs[i].enqueued, worker_index);
        return;
    }

    if (rowFanoutMin_ == 0 && !resultCache_) {
        executeBatchSegment(db, jobs, count, worker_index);
        return;
    }

    // Cache hits and fan-out-eligible keys leave the batch.  A hit
    // never touches the slice at all; a fan-out key would make
    // searchBatch walk its many home chains serially inside the chunk
    // (its multi-home fallback), exactly the blow-up the fan-out
    // exists to parallelize.  The segments between them still batch,
    // and responses are published in submission order under any split
    // -- the preceding miss segment always flushes before a cached
    // response goes out, so per-port FIFO (and bit-identity against
    // the serial oracle) is preserved.
    Worker &self = *workers[worker_index];
    std::size_t seg = 0;
    for (std::size_t k = 0; k < count; ++k) {
        core::SearchResult cached;
        if (probeCache(jobs[k].request, cached)) {
            if (k > seg)
                executeBatchSegment(db, jobs + seg, k - seg,
                                    worker_index);
            publishCached(jobs[k].request, cached, jobs[k].enqueued);
            seg = k + 1;
            continue;
        }
        if (rowFanoutMin_ == 0)
            continue;
        // Single-home (fully specified) keys always stay in the batch,
        // even under a forced threshold of 1: sharding a one-home chain
        // cannot help, and pulling the key out would destroy the run's
        // row sharing.
        if (jobs[k].request.key.fullySpecified() ||
            !fanoutEligible(db, jobs[k].request.key, self))
            continue;
        if (k > seg)
            executeBatchSegment(db, jobs + seg, k - seg, worker_index);
        executeFanoutSearch(db, jobs[k].request, jobs[k].enqueued,
                            worker_index);
        seg = k + 1;
    }
    if (count > seg)
        executeBatchSegment(db, jobs + seg, count - seg, worker_index);
}

void
ParallelSearchEngine::executeBatchSegment(core::Database &db,
                                          const Job *jobs,
                                          std::size_t count,
                                          unsigned worker_index)
{
    const unsigned port_no = jobs[0].request.port;
    Worker &self = *workers[worker_index];
    self.keyPtrs.clear();
    for (std::size_t i = 0; i < count; ++i)
        self.keyPtrs.push_back(&jobs[i].request.key);
    if (self.batchResults.size() < count)
        self.batchResults.resize(count);
    if (resultCache_) {
        // Per-key stamp capture before the batched walk runs: each
        // fill is stamped with its own key's candidate home-row
        // coverage, so a later mutation invalidates exactly the keys
        // whose regions it dirtied.
        if (self.fillMasks.size() < count) {
            self.fillMasks.resize(count);
            self.fillStamps.resize(count);
        }
        for (std::size_t i = 0; i < count; ++i) {
            self.fillMasks[i] = db.searchRegionMask(jobs[i].request.key,
                                                    self.maskHomes);
            self.fillStamps[i] =
                resultCache_->captureStamp(port_no, self.fillMasks[i]);
        }
    }
    const uint64_t fetches =
        db.searchBatch(self.keyPtrs.data(), static_cast<unsigned>(count),
                       self.batchResults.data());
    if (resultCache_) {
        // Negative results are cached too: a repeated miss replays the
        // same (deterministic) empty-handed chain walk.
        for (std::size_t i = 0; i < count; ++i)
            resultCache_->fill(port_no, jobs[i].request.key,
                               self.batchResults[i], self.fillStamps[i],
                               self.fillMasks[i]);
    }

    // Modeled cost of the whole run: the bank is occupied once per
    // *distinct* row fetch -- a row matched for a whole group of keys
    // cost one access where the serial controller would pay one per
    // key.  This is the batched pipeline's bandwidth claim, and the
    // per-response bucketsAccessed below still reports the
    // serial-equivalent counts for the AMAL statistics.
    const uint64_t cycles = std::max<uint64_t>(1, fetches) *
                            std::max(1u, cfg.timing.minCycleGap);
    PortState &port = *ports[port_no];
    port.stats.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);
    self.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);
    self.batchedSearchRuns.fetch_add(1, std::memory_order_relaxed);

    if (cfg.adaptiveBatch) {
        // Keys per distinct row fetch: ~1 on uniform traffic, up to the
        // group width on bursty traffic.  EWMA so one quiet run does
        // not flap the strategy.
        const double sharing = static_cast<double>(count) /
                               std::max<uint64_t>(1, fetches);
        self.sharingEwma = self.sharingSeeded
            ? 0.75 * self.sharingEwma + 0.25 * sharing
            : sharing;
        self.sharingSeeded = true;
        if (self.sharingEwma < cfg.adaptiveMinSharing)
            self.serialHold = cfg.adaptiveHoldRuns;
    }

    for (std::size_t i = 0; i < count; ++i) {
        const core::SearchResult &r = self.batchResults[i];
        core::PortResponse resp;
        resp.tag = jobs[i].request.tag;
        resp.port = port_no;
        resp.op = core::PortOp::Search;
        resp.hit = r.hit;
        resp.data = r.data;
        resp.key = r.key;
        resp.bucketsAccessed = r.bucketsAccessed;
        finishResponse(std::move(resp), jobs[i].enqueued);
    }
}

void
ParallelSearchEngine::executeInsertRun(const Job *jobs, std::size_t count,
                                       unsigned worker_index)
{
    const unsigned port_no = jobs[0].request.port;
    core::Database &db = sys->database(port_no);
    if (db.powerState() != core::PowerState::Active) {
        // Retained database: the serial path produces the per-request
        // error responses.
        for (std::size_t i = 0; i < count; ++i)
            execute(jobs[i].request, jobs[i].enqueued, worker_index);
        return;
    }

    Worker &self = *workers[worker_index];
    self.records.clear();
    self.priorities.clear();
    for (std::size_t i = 0; i < count; ++i) {
        self.records.push_back(
            core::Record{jobs[i].request.key, jobs[i].request.data});
        self.priorities.push_back(jobs[i].request.priority);
    }
    if (self.outcomes.size() < count)
        self.outcomes.resize(count);
    const core::InsertBatchSummary sum = db.insertBatch(
        std::span<const core::Record>(self.records), self.outcomes.data(),
        self.priorities.data());
    {
        std::lock_guard<std::mutex> lock(self.ingestMutex);
        self.ingest.merge(sum);
    }
    self.batchedInsertRuns.fetch_add(1, std::memory_order_relaxed);

    // Invalidate *after* the batch lands: the slice accumulated the
    // exact dirty-region mask while the guards ran, and per-port
    // serialization guarantees no search on this port probes between
    // the writes and this bump.
    invalidateCache(port_no, /*wholePort=*/false);

    // Modeled cost: a serial CAM-mode insert occupies the bank for one
    // access slot per request (inserts report no bucketsAccessed), so
    // the run charges exactly what serial execution would -- modeled
    // accounting stays bit-identical, and the row-op economy of the
    // bulk path is reported through the ingest summary instead.
    const uint64_t cycles =
        count * std::max(1u, cfg.timing.minCycleGap);
    PortState &port = *ports[port_no];
    port.stats.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);
    self.modeledCycles.fetch_add(cycles, std::memory_order_relaxed);

    for (std::size_t i = 0; i < count; ++i) {
        core::PortResponse resp;
        resp.tag = jobs[i].request.tag;
        resp.port = port_no;
        resp.op = core::PortOp::Insert;
        resp.hit = self.outcomes[i].ok;
        finishResponse(std::move(resp), jobs[i].enqueued);
    }
}

void
ParallelSearchEngine::noteCompletion()
{
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drainMutex);
        drainCv.notify_all();
    }
}

void
ParallelSearchEngine::ring(unsigned worker_index)
{
    Worker &w = *workers[worker_index];
    // The empty critical section orders the ring after the waiter's
    // predicate check: either the waiter saw the pushed work, or it is
    // already parked and this notify wakes it.
    { std::lock_guard<std::mutex> lock(w.bellMutex); }
    w.bell.notify_one();
}

void
ParallelSearchEngine::ringAll()
{
    for (unsigned w = 0; w < workerCount; ++w)
        ring(w);
}

void
ParallelSearchEngine::workerMain(unsigned index)
{
    Worker &self = *workers[index];
    std::vector<Job> batch;
    for (;;) {
        // Shard sub-tasks first: they unblock coordinators (possibly
        // this worker's own producers) and are always short.
        bool progressed = false;
        while (const auto task = fanoutTasks->tryPop()) {
            runFanoutTask(*task);
            progressed = true;
        }
        if (self.queue.tryPopBatch(batch, cfg.drainBatch) > 0) {
            processJobs(batch, index);
            progressed = true;
        }
        // Jobs deferred behind a writer-lane hand-off whose port has
        // been released come next (the writer rang this bell).
        if (drainPending(index))
            progressed = true;
        if (progressed)
            continue;
        // Nothing anywhere: park on the doorbell.  Producers (submits
        // to this worker's queue, fan-out shard pushes, writer-lane
        // releases, stop()) ring after publishing, and the predicate
        // re-checks every source under the bell mutex, so no wakeup
        // can be lost.
        std::unique_lock<std::mutex> lock(self.bellMutex);
        if (self.queue.closed() && self.queue.empty() &&
            fanoutTasks->empty() && !pendingReady(index))
            break;
        self.bell.wait(lock, [&] {
            return self.queue.closed() || !self.queue.empty() ||
                   !fanoutTasks->empty() || pendingReady(index);
        });
    }
}

void
ParallelSearchEngine::writerMain(unsigned lane)
{
    auto &queue = *writerQueues[lane];
    const unsigned scratch_index = workerCount + lane;
    for (;;) {
        std::optional<MutationRun> run = queue.pop();
        if (!run)
            break; // closed and drained
        const unsigned port_no = run->jobs[0].request.port;
        PortState &port = *ports[port_no];
        // Execute with this lane's own scratch and counters (its
        // trailing Worker) through the normal run loop -- consecutive
        // Insert jobs still combine into one bulk ingest.  While the
        // port is checked out the owner may stage follow-up mutation
        // runs directly onto it; drain the staging deque until it is
        // empty at the moment the busy flag drops.  Both sides hold
        // stageMutex -- an owner that saw busy re-checks under the
        // mutex before appending, so no staged run can be stranded
        // behind a cleared flag.
        std::vector<Job> jobs = std::move(run->jobs);
        for (;;) {
            processJobs(jobs, scratch_index);
            jobs.clear();
            {
                std::lock_guard<std::mutex> lock(port.stageMutex);
                if (port.staged.empty()) {
                    port.busy.store(false, std::memory_order_release);
                    break;
                }
                // Concatenate every staged run into one batch: the
                // run loop re-splits it, and adjacent same-port insert
                // runs combine into a single bulk ingest.
                while (!port.staged.empty()) {
                    MutationRun &next = port.staged.front();
                    jobs.insert(
                        jobs.end(),
                        std::make_move_iterator(next.jobs.begin()),
                        std::make_move_iterator(next.jobs.end()));
                    port.staged.pop_front();
                }
            }
        }
        ring(workerOf(port_no));
    }
}

bool
ParallelSearchEngine::drainPending(unsigned index)
{
    if (!cfg.concurrentMutation)
        return false;
    bool progressed = false;
    for (std::size_t p = index; p < ports.size(); p += workerCount) {
        PortState &port = *ports[p];
        if (port.pending.empty() ||
            port.busy.load(std::memory_order_acquire))
            continue;
        // Re-dispatch through the normal run loop.  If a deferred
        // mutation hands the port off again, the jobs behind it land
        // back in pending -- the deque was emptied first, so the FIFO
        // order is preserved.
        std::vector<Job> local(port.pending.begin(), port.pending.end());
        port.pending.clear();
        processJobs(local, index);
        progressed = true;
    }
    return progressed;
}

bool
ParallelSearchEngine::pendingReady(unsigned index) const
{
    if (!cfg.concurrentMutation)
        return false;
    for (std::size_t p = index; p < ports.size(); p += workerCount) {
        const PortState &port = *ports[p];
        if (!port.pending.empty() &&
            !port.busy.load(std::memory_order_acquire))
            return true;
    }
    return false;
}

void
ParallelSearchEngine::processJobs(const std::vector<Job> &batch,
                                  unsigned index)
{
    Worker &self = *workers[index];
    std::size_t i = 0;
    {
        while (i < batch.size()) {
            // Extend a run of same-port searches -- or same-port
            // inserts -- up to batchSize; any other request (or a port
            // change) flushes the run, so mutations never reorder
            // against the requests around them.
            std::size_t j = i;
            const core::PortOp op = batch[i].request.op;
            // Writer lanes (index >= workerCount) execute what they
            // are handed; with combining on they extend insert runs
            // without the batchSize cap so a whole drained backlog
            // becomes one bulk ingest (one row fetch + one seqlock
            // writer section per distinct row).
            const bool writer_lane = index >= workerCount;
            const bool combine = writer_lane && cfg.writerCombining &&
                                 op == core::PortOp::Insert;
            if ((cfg.batchSize > 1 || combine) &&
                (op == core::PortOp::Search ||
                 op == core::PortOp::Insert)) {
                while (j + 1 < batch.size() &&
                       (combine || j + 1 - i < cfg.batchSize) &&
                       batch[j + 1].request.op == op &&
                       batch[j + 1].request.port ==
                           batch[i].request.port)
                    ++j;
            }
            // Writer-lane routing (only owning workers route).
            if (cfg.concurrentMutation && !writer_lane) {
                PortState &port = *ports[batch[i].request.port];
                bool busy_now =
                    port.busy.load(std::memory_order_acquire);
                if (busy_now && op != core::PortOp::Search &&
                    cfg.writerCombining && port.pending.empty()) {
                    // The port is checked out to its writer lane and
                    // nothing older is deferred: stage the mutations
                    // directly onto the lane instead of parking them.
                    // The lane drains staging before releasing the
                    // port, so the run still executes in FIFO
                    // position.  Re-check busy under stageMutex -- the
                    // lane clears the flag under the same mutex only
                    // when staging is empty, so an append here is
                    // guaranteed to be seen.
                    std::lock_guard<std::mutex> lock(port.stageMutex);
                    if (port.busy.load(std::memory_order_acquire)) {
                        MutationRun run;
                        run.jobs.assign(
                            batch.begin() +
                                static_cast<std::ptrdiff_t>(i),
                            batch.begin() +
                                static_cast<std::ptrdiff_t>(j) + 1);
                        port.staged.push_back(std::move(run));
                        self.stagedRuns.fetch_add(
                            1, std::memory_order_relaxed);
                        i = j + 1;
                        continue;
                    }
                    // Lane released the port between the loads: hand
                    // off fresh below.  (pending stays empty -- only
                    // this owner appends to it.)
                    busy_now = false;
                }
                if (busy_now || !port.pending.empty()) {
                    // A hand-off for this port is still in flight (or
                    // older deferred jobs wait behind one): defer the
                    // whole run so the port's FIFO order survives, and
                    // keep serving the batch's other ports.
                    for (std::size_t k = i; k <= j; ++k)
                        port.pending.push_back(batch[k]);
                    i = j + 1;
                    continue;
                }
                if (op != core::PortOp::Search) {
                    // Hand the mutation run to the port's writer lane
                    // and move on to the next run instead of stalling.
                    MutationRun run;
                    run.jobs.assign(batch.begin() +
                                        static_cast<std::ptrdiff_t>(i),
                                    batch.begin() +
                                        static_cast<std::ptrdiff_t>(j) +
                                        1);
                    port.busy.store(true, std::memory_order_release);
                    const unsigned lane = laneOf(batch[i].request.port);
                    if (writerQueues[lane]->push(std::move(run))) {
                        i = j + 1;
                        continue;
                    }
                    // Queue closed (a stop() raced a straggler): fall
                    // through and execute the run right here.
                    port.busy.store(false, std::memory_order_release);
                }
            }
            if (j > i && op == core::PortOp::Search &&
                cfg.adaptiveBatch && self.serialHold > 0) {
                // Backed off: recent runs found too little row sharing
                // to amortize the grouping work -- execute serially
                // (results identical) until the hold expires.
                --self.serialHold;
                self.adaptiveSerialRuns.fetch_add(
                    1, std::memory_order_relaxed);
                for (std::size_t k = i; k <= j; ++k) {
                    execute(batch[k].request, batch[k].enqueued, index);
                    noteCompletion();
                }
            } else if (j > i && op == core::PortOp::Search) {
                executeSearchRun(batch.data() + i, j - i + 1, index);
                for (std::size_t k = i; k <= j; ++k)
                    noteCompletion();
            } else if (j > i) {
                executeInsertRun(batch.data() + i, j - i + 1, index);
                for (std::size_t k = i; k <= j; ++k)
                    noteCompletion();
            } else {
                execute(batch[i].request, batch[i].enqueued, index);
                noteCompletion();
            }
            i = j + 1;
        }
    }
}

bool
ParallelSearchEngine::submitRequest(const core::PortRequest &request)
{
    if (request.port >= ports.size())
        fatal(strprintf("submit to unknown virtual port %u",
                        request.port));
    if (stopped)
        return false;
    const auto now = std::chrono::steady_clock::now();
    if (cfg.workers == 0) {
        // Deterministic fallback: run inline on the calling thread.
        ++ports[request.port]->stats.submitted;
        execute(request, now, workerOf(request.port));
        return true;
    }
    // Count the submission *before* publishing the job: once the push
    // succeeds the owning worker can complete the request at any
    // moment, and a submitted count that trails the push lets a
    // concurrent report() observe completed > submitted (and tears a
    // plain counter under TSan).  A rejected push rolls it back.
    inflight.fetch_add(1, std::memory_order_acq_rel);
    PortStats &stats = ports[request.port]->stats;
    stats.submitted.fetch_add(1, std::memory_order_relaxed);
    if (!workers[workerOf(request.port)]->queue.push(
            Job{request, now})) {
        // Queue closed: roll both counts back.
        stats.submitted.fetch_sub(1, std::memory_order_relaxed);
        noteCompletion();
        return false;
    }
    ring(workerOf(request.port));
    return true;
}

bool
ParallelSearchEngine::submit(unsigned port, const Key &key, uint64_t tag)
{
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Search;
    req.key = key;
    req.tag = tag;
    return submitRequest(req);
}

bool
ParallelSearchEngine::trySubmit(unsigned port, const Key &key,
                                uint64_t tag)
{
    if (port >= ports.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    if (stopped)
        return false;
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Search;
    req.key = key;
    req.tag = tag;
    const auto now = std::chrono::steady_clock::now();
    if (cfg.workers == 0) {
        ++ports[port]->stats.submitted;
        execute(req, now, workerOf(port));
        return true;
    }
    // Same submitted-before-push protocol as submitRequest().
    inflight.fetch_add(1, std::memory_order_acq_rel);
    PortStats &stats = ports[port]->stats;
    stats.submitted.fetch_add(1, std::memory_order_relaxed);
    if (!workers[workerOf(port)]->queue.tryPush(Job{req, now})) {
        stats.submitted.fetch_sub(1, std::memory_order_relaxed);
        noteCompletion();
        return false;
    }
    ring(workerOf(port));
    return true;
}

bool
ParallelSearchEngine::submitMaintenanceStep(unsigned port)
{
    if (stopped || !running || port >= ports.size())
        return false;
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Maintenance;
    // Counts toward inflight only -- drain() must cover an in-flight
    // step (it mutates the table), but no response is produced, so the
    // per-port submitted/completed counters stay foreground-only.
    inflight.fetch_add(1, std::memory_order_acq_rel);
    if (!workers[workerOf(port)]->queue.tryPush(
            Job{req, std::chrono::steady_clock::now()})) {
        noteCompletion();
        return false;
    }
    ring(workerOf(port));
    return true;
}

uint64_t
ParallelSearchEngine::completedCount() const
{
    uint64_t done = 0;
    for (const auto &port : ports)
        done += port->stats.completed.load(std::memory_order_relaxed);
    return done;
}

std::size_t
ParallelSearchEngine::submitBatch(
    std::span<const core::PortRequest> requests)
{
    std::size_t accepted = 0;
    for (const core::PortRequest &req : requests) {
        if (!submitRequest(req))
            break;
        ++accepted;
    }
    return accepted;
}

bool
ParallelSearchEngine::submitRebuild(unsigned port, uint64_t tag)
{
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Rebuild;
    req.tag = tag;
    return submitRequest(req);
}

core::InsertBatchSummary
ParallelSearchEngine::bulkLoad(unsigned port,
                               std::span<const core::Record> records,
                               core::InsertOutcome *outcomes,
                               const int *priorities)
{
    if (port >= ports.size())
        fatal(strprintf("bulk load to unknown virtual port %u", port));
    if (running)
        fatal("bulkLoad needs a stopped engine: a running port's "
              "database belongs to its worker thread");
    // Whole-port: a bulk load can touch most of the table, and with
    // the engine stopped no probe can race the bump anyway.
    invalidateCache(port, /*wholePort=*/true);
    return sys->database(port).insertBatch(records, outcomes, priorities);
}

void
ParallelSearchEngine::drain()
{
    if (cfg.workers == 0 || !running)
        return; // inline mode is always drained
    // Pause the maintenance planner for the wait: its steps count
    // toward inflight, so an unpaused planner could keep the count
    // bouncing off zero indefinitely.
    drainingFg_.store(true, std::memory_order_release);
    {
        std::unique_lock<std::mutex> lock(drainMutex);
        drainCv.wait(lock, [&] {
            return inflight.load(std::memory_order_acquire) == 0;
        });
    }
    // Quiesced window: inflight is 0 (maintenance steps count toward
    // it) and the paused planner cannot submit a new one until the
    // flag below clears, so no thread is mutating the tables.
    refreshAnalyticBounds();
    drainingFg_.store(false, std::memory_order_release);
}

void
ParallelSearchEngine::refreshAnalyticBounds()
{
    for (std::size_t p = 0; p < ports.size(); ++p) {
        core::Database &db = sys->database(static_cast<unsigned>(p));
        const double bound = db.searchBandwidthMsps(cfg.timing);
        ports[p]->analyticBoundBits.store(std::bit_cast<uint64_t>(bound),
                                          std::memory_order_relaxed);
        uint64_t probes = db.slice().prefilterProbes();
        uint64_t skips = db.slice().prefilterSkips();
        if (const core::CaRamSlice *ov = db.overflowSlice()) {
            probes += ov->prefilterProbes();
            skips += ov->prefilterSkips();
        }
        ports[p]->prefilterProbesSnap.store(probes,
                                            std::memory_order_relaxed);
        ports[p]->prefilterSkipsSnap.store(skips,
                                           std::memory_order_relaxed);
    }
}

void
ParallelSearchEngine::stop()
{
    if (stopped)
        return;
    // Planner first: no new maintenance steps once the drain starts.
    if (maintenance_)
        maintenance_->stopPlanner();
    if (running)
        drain();
    stopped = true;
    for (auto &w : workers)
        w->queue.close();
    for (auto &q : writerQueues)
        q->close();       // drained already: writer lanes are idle
    fanoutTasks->close(); // drained already: no shard can be in flight
    ringAll();            // wake parked workers so they observe close
    for (std::thread &t : threads)
        t.join();
    threads.clear();
    for (std::thread &t : writerThreads)
        t.join();
    writerThreads.clear();
    running = false;
    // With every execution thread joined, retire any migration the
    // tear hook left half-done so the stopped tables hold exactly one
    // copy per record (peek() readers stay safe: this is the ordinary
    // quiesce-then-remove phase 2).
    if (maintenance_)
        maintenance_->flushAllPending();
    refreshAnalyticBounds(); // post-join: covers the flushed removals
}

std::optional<core::PortResponse>
ParallelSearchEngine::fetchResult(unsigned port)
{
    if (port >= ports.size())
        fatal(strprintf("no results for unknown virtual port %u", port));
    PortState &state = *ports[port];
    std::lock_guard<std::mutex> lock(state.resultMutex);
    if (state.results.empty())
        return std::nullopt;
    core::PortResponse out = std::move(state.results.front());
    state.results.pop_front();
    return out;
}

core::SearchResult
ParallelSearchEngine::peek(unsigned port, const Key &key) const
{
    if (port >= ports.size())
        fatal(strprintf("peek at unknown virtual port %u", port));
    // Thread-local scratch: peek() may run on any number of threads at
    // once, and the scratch re-sizes itself to each call's row shape.
    static thread_local core::CaRamSlice::ConcurrentSearchScratch scratch;
    // Pin the epoch for the whole lookup so a concurrent rebuildSwap()
    // cannot reclaim the slice we are reading.
    const sim::EpochDomain::Guard guard(epochDomain_);
    return sys->database(port).searchConcurrent(key, scratch);
}

const PortStats &
ParallelSearchEngine::portStats(unsigned port) const
{
    if (port >= ports.size())
        fatal(strprintf("no stats for unknown virtual port %u", port));
    return ports[port]->stats;
}

EngineReport
ParallelSearchEngine::report() const
{
    EngineReport out;
    out.workers = workerCount;
    out.writerLanes = writerLaneCount_;
    uint64_t total_cycles = 0;
    uint64_t max_cycles = 0;
    for (std::size_t wi = 0; wi < workers.size(); ++wi) {
        Worker &w = *workers[wi];
        const uint64_t wc =
            w.modeledCycles.load(std::memory_order_relaxed);
        total_cycles += wc;
        max_cycles = std::max(max_cycles, wc);
        out.batchedSearchRuns +=
            w.batchedSearchRuns.load(std::memory_order_relaxed);
        out.adaptiveSerialRuns +=
            w.adaptiveSerialRuns.load(std::memory_order_relaxed);
        out.batchedInsertRuns +=
            w.batchedInsertRuns.load(std::memory_order_relaxed);
        out.stagedMutationRuns +=
            w.stagedRuns.load(std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(w.ingestMutex);
            out.ingest.merge(w.ingest);
            // Trailing Workers are writer-lane scratch: break their
            // ingest numbers out separately so the combining economy
            // (rows fetched vs the serial controller) is visible.
            if (wi >= workerCount)
                out.writerIngest.merge(w.ingest);
        }
        out.fanoutLookups +=
            w.fanoutLookups.load(std::memory_order_relaxed);
        out.fanoutShards +=
            w.fanoutShards.load(std::memory_order_relaxed);
        out.fanoutSerialFallbacks +=
            w.fanoutSerialFallbacks.load(std::memory_order_relaxed);
    }
    out.writerRowFetches = out.writerIngest.rowFetches;
    out.writerSerialRowFetches = out.writerIngest.serialRowFetches;
    out.rowsCombined =
        out.writerSerialRowFetches > out.writerRowFetches
            ? out.writerSerialRowFetches - out.writerRowFetches
            : 0;
    // `completed` before `wallEndNs`: each completion publishes its end
    // stamp before incrementing completed (finishResponse), so the
    // stamp read below covers every completion counted here and the
    // wall throughput cannot be inflated by a half-published
    // completion.
    for (const auto &p : ports) {
        out.completed += p->stats.completed.load(
            std::memory_order_acquire);
        out.cacheHits +=
            p->stats.cacheHits.load(std::memory_order_relaxed);
        out.cacheMisses +=
            p->stats.cacheMisses.load(std::memory_order_relaxed);
        out.cacheInvalidations += p->stats.cacheInvalidations.load(
            std::memory_order_relaxed);
    }
    if (resultCache_) {
        out.cacheWholePortInvalidations =
            resultCache_->wholePortInvalidations();
        out.cacheRegionInvalidations =
            resultCache_->regionInvalidations();
    }
    // cycles / f_clk[MHz] = microseconds; lookups per microsecond = Msps.
    if (max_cycles > 0)
        out.modeledMsps = static_cast<double>(out.completed) /
                          max_cycles * cfg.timing.clockMhz;
    if (total_cycles > 0)
        out.modeledSerialMsps = static_cast<double>(out.completed) /
                                total_cycles * cfg.timing.clockMhz;
    if (out.modeledSerialMsps > 0.0)
        out.modeledSpeedup = out.modeledMsps / out.modeledSerialMsps;
    for (std::size_t p = 0; p < ports.size(); ++p) {
        core::Database &db = sys->database(static_cast<unsigned>(p));
        // Inline mode computes the bound live (the caller is the only
        // execution authority); threaded engines read the snapshot
        // from the last quiesced point -- the live computation walks
        // non-atomic load statistics that lanes and maintenance steps
        // mutate.
        if (cfg.workers == 0) {
            out.analyticBoundMsps += db.searchBandwidthMsps(cfg.timing);
            out.prefilterProbes += db.slice().prefilterProbes();
            out.prefilterSkips += db.slice().prefilterSkips();
            if (core::CaRamSlice *ov = db.overflowSlice()) {
                out.prefilterProbes += ov->prefilterProbes();
                out.prefilterSkips += ov->prefilterSkips();
            }
        } else {
            out.analyticBoundMsps +=
                std::bit_cast<double>(ports[p]->analyticBoundBits.load(
                    std::memory_order_relaxed));
            out.prefilterProbes += ports[p]->prefilterProbesSnap.load(
                std::memory_order_relaxed);
            out.prefilterSkips += ports[p]->prefilterSkipsSnap.load(
                std::memory_order_relaxed);
        }
    }
    out.wallSeconds =
        wallEndNs.load(std::memory_order_acquire) / 1e9;
    if (out.wallSeconds > 0.0)
        out.wallMsps = out.completed / out.wallSeconds / 1e6;
    if (maintenance_) {
        out.maintenanceSteps = maintenance_->steps();
        out.maintenanceSweeps = maintenance_->sweeps();
        out.rowsMigrated = maintenance_->rowsMigrated();
        out.overflowCompacted = maintenance_->overflowCompacted();
        out.reachTrims = maintenance_->reachTrims();
        out.tornMaintenanceSteps = maintenance_->tornSteps();
        out.maintenanceBackoffs = maintenance_->backoffs();
        out.amalBefore = maintenance_->amalBefore();
        out.amalAfter = maintenance_->amalAfter();
    }
    return out;
}

} // namespace caram::engine
