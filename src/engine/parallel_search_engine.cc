#include "engine/parallel_search_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace caram::engine {

/** A request travelling through a worker queue, stamped at enqueue. */
struct ParallelSearchEngine::Job
{
    core::PortRequest request;
    std::chrono::steady_clock::time_point enqueued;
};

/** Per-port result stream and instrumentation. */
struct ParallelSearchEngine::PortState
{
    std::mutex resultMutex;
    std::deque<core::PortResponse> results;
    PortStats stats;
};

/** One worker: its request queue and its private modeled clock. */
struct ParallelSearchEngine::Worker
{
    explicit Worker(std::size_t capacity) : queue(capacity) {}
    sim::ConcurrentBoundedQueue<Job> queue;
    /** Busy cycles of this worker's modeled input controller. */
    uint64_t modeledCycles = 0;
    /** Batched-run scratch (sized once, reused across runs). */
    std::vector<const Key *> keyPtrs;
    std::vector<core::SearchResult> batchResults;
    /** Bulk-ingest scratch (sized once, reused across runs). */
    std::vector<core::Record> records;
    std::vector<int> priorities;
    std::vector<core::InsertOutcome> outcomes;
    /** Merged row-op accounting of this worker's insert runs. */
    core::InsertBatchSummary ingest;
    /** Run counters (EngineReport). */
    uint64_t batchedSearchRuns = 0;
    uint64_t adaptiveSerialRuns = 0;
    uint64_t batchedInsertRuns = 0;
    /** Adaptive controller: smoothed keys-per-fetch of recent batched
     *  runs, and search runs left in the current serial back-off. */
    double sharingEwma = 0.0;
    bool sharingSeeded = false;
    unsigned serialHold = 0;
};

ParallelSearchEngine::ParallelSearchEngine(core::CaRamSubsystem &subsystem,
                                           EngineConfig config)
    : sys(&subsystem), cfg(config),
      workerCount(std::max(1u, cfg.workers))
{
    if (sys->databaseCount() == 0)
        fatal("parallel search engine needs at least one database");
    if (cfg.queueCapacity == 0)
        fatal("engine queue capacity must be nonzero");
    if (cfg.drainBatch == 0)
        cfg.drainBatch = 1;
    for (std::size_t p = 0; p < sys->databaseCount(); ++p)
        ports.push_back(std::make_unique<PortState>());
    for (unsigned w = 0; w < workerCount; ++w)
        workers.push_back(std::make_unique<Worker>(cfg.queueCapacity));
    wallStart = std::chrono::steady_clock::now();
}

ParallelSearchEngine::~ParallelSearchEngine()
{
    stop();
}

unsigned
ParallelSearchEngine::workerOf(unsigned port) const
{
    return port % workerCount;
}

void
ParallelSearchEngine::start()
{
    if (running || stopped || cfg.workers == 0)
        return;
    running = true;
    wallStart = std::chrono::steady_clock::now();
    for (unsigned w = 0; w < cfg.workers; ++w)
        threads.emplace_back([this, w] { workerMain(w); });
}

void
ParallelSearchEngine::finishResponse(
    core::PortResponse resp,
    std::chrono::steady_clock::time_point enqueued)
{
    PortState &port = *ports[resp.port];
    ++port.stats.completed;
    if (resp.hit)
        ++port.stats.hits;
    if (!resp.ok)
        ++port.stats.errors;
    if (resp.op == core::PortOp::Search)
        port.stats.bucketsAccessed.add(resp.bucketsAccessed);

    const auto now = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             enqueued)
            .count() /
        1e3;
    port.stats.latencyUs.add(us);
    port.stats.latencyLog2Us.add(
        static_cast<uint64_t>(std::floor(std::log2(1.0 + us))));

    {
        std::lock_guard<std::mutex> lock(port.resultMutex);
        port.results.push_back(std::move(resp));
    }
    wallEndNs.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - wallStart)
            .count(),
        std::memory_order_relaxed);
}

void
ParallelSearchEngine::execute(
    const core::PortRequest &request,
    std::chrono::steady_clock::time_point enqueued, unsigned worker_index)
{
    core::PortResponse resp =
        core::executePortRequest(sys->database(request.port), request);

    // Modeled cost: the lookup occupies this worker's bank for n_mem
    // cycles per bucket accessed (probe chains are sequential); every
    // request costs at least one access slot.
    const uint64_t accesses = std::max(1u, resp.bucketsAccessed);
    const uint64_t cycles =
        accesses * std::max(1u, cfg.timing.minCycleGap);

    PortState &port = *ports[request.port];
    port.stats.modeledCycles += cycles;
    workers[worker_index]->modeledCycles += cycles;

    finishResponse(std::move(resp), enqueued);
}

void
ParallelSearchEngine::executeSearchRun(const Job *jobs, std::size_t count,
                                       unsigned worker_index)
{
    const unsigned port_no = jobs[0].request.port;
    core::Database &db = sys->database(port_no);
    if (db.powerState() != core::PowerState::Active) {
        // Retained database: fall back to the serial path, which
        // produces the per-request error responses.
        for (std::size_t i = 0; i < count; ++i)
            execute(jobs[i].request, jobs[i].enqueued, worker_index);
        return;
    }

    Worker &self = *workers[worker_index];
    self.keyPtrs.clear();
    for (std::size_t i = 0; i < count; ++i)
        self.keyPtrs.push_back(&jobs[i].request.key);
    if (self.batchResults.size() < count)
        self.batchResults.resize(count);
    const uint64_t fetches =
        db.searchBatch(self.keyPtrs.data(), static_cast<unsigned>(count),
                       self.batchResults.data());

    // Modeled cost of the whole run: the bank is occupied once per
    // *distinct* row fetch -- a row matched for a whole group of keys
    // cost one access where the serial controller would pay one per
    // key.  This is the batched pipeline's bandwidth claim, and the
    // per-response bucketsAccessed below still reports the
    // serial-equivalent counts for the AMAL statistics.
    const uint64_t cycles = std::max<uint64_t>(1, fetches) *
                            std::max(1u, cfg.timing.minCycleGap);
    PortState &port = *ports[port_no];
    port.stats.modeledCycles += cycles;
    self.modeledCycles += cycles;
    ++self.batchedSearchRuns;

    if (cfg.adaptiveBatch) {
        // Keys per distinct row fetch: ~1 on uniform traffic, up to the
        // group width on bursty traffic.  EWMA so one quiet run does
        // not flap the strategy.
        const double sharing = static_cast<double>(count) /
                               std::max<uint64_t>(1, fetches);
        self.sharingEwma = self.sharingSeeded
            ? 0.75 * self.sharingEwma + 0.25 * sharing
            : sharing;
        self.sharingSeeded = true;
        if (self.sharingEwma < cfg.adaptiveMinSharing)
            self.serialHold = cfg.adaptiveHoldRuns;
    }

    for (std::size_t i = 0; i < count; ++i) {
        const core::SearchResult &r = self.batchResults[i];
        core::PortResponse resp;
        resp.tag = jobs[i].request.tag;
        resp.port = port_no;
        resp.op = core::PortOp::Search;
        resp.hit = r.hit;
        resp.data = r.data;
        resp.key = r.key;
        resp.bucketsAccessed = r.bucketsAccessed;
        finishResponse(std::move(resp), jobs[i].enqueued);
    }
}

void
ParallelSearchEngine::executeInsertRun(const Job *jobs, std::size_t count,
                                       unsigned worker_index)
{
    const unsigned port_no = jobs[0].request.port;
    core::Database &db = sys->database(port_no);
    if (db.powerState() != core::PowerState::Active) {
        // Retained database: the serial path produces the per-request
        // error responses.
        for (std::size_t i = 0; i < count; ++i)
            execute(jobs[i].request, jobs[i].enqueued, worker_index);
        return;
    }

    Worker &self = *workers[worker_index];
    self.records.clear();
    self.priorities.clear();
    for (std::size_t i = 0; i < count; ++i) {
        self.records.push_back(
            core::Record{jobs[i].request.key, jobs[i].request.data});
        self.priorities.push_back(jobs[i].request.priority);
    }
    if (self.outcomes.size() < count)
        self.outcomes.resize(count);
    const core::InsertBatchSummary sum = db.insertBatch(
        std::span<const core::Record>(self.records), self.outcomes.data(),
        self.priorities.data());
    self.ingest.merge(sum);
    ++self.batchedInsertRuns;

    // Modeled cost: a serial CAM-mode insert occupies the bank for one
    // access slot per request (inserts report no bucketsAccessed), so
    // the run charges exactly what serial execution would -- modeled
    // accounting stays bit-identical, and the row-op economy of the
    // bulk path is reported through the ingest summary instead.
    const uint64_t cycles =
        count * std::max(1u, cfg.timing.minCycleGap);
    PortState &port = *ports[port_no];
    port.stats.modeledCycles += cycles;
    self.modeledCycles += cycles;

    for (std::size_t i = 0; i < count; ++i) {
        core::PortResponse resp;
        resp.tag = jobs[i].request.tag;
        resp.port = port_no;
        resp.op = core::PortOp::Insert;
        resp.hit = self.outcomes[i].ok;
        finishResponse(std::move(resp), jobs[i].enqueued);
    }
}

void
ParallelSearchEngine::noteCompletion()
{
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drainMutex);
        drainCv.notify_all();
    }
}

void
ParallelSearchEngine::workerMain(unsigned index)
{
    Worker &self = *workers[index];
    std::vector<Job> batch;
    while (self.queue.popBatch(batch, cfg.drainBatch) > 0) {
        std::size_t i = 0;
        while (i < batch.size()) {
            // Extend a run of same-port searches -- or same-port
            // inserts -- up to batchSize; any other request (or a port
            // change) flushes the run, so mutations never reorder
            // against the requests around them.
            std::size_t j = i;
            const core::PortOp op = batch[i].request.op;
            if (cfg.batchSize > 1 && (op == core::PortOp::Search ||
                                      op == core::PortOp::Insert)) {
                while (j + 1 < batch.size() &&
                       j + 1 - i < cfg.batchSize &&
                       batch[j + 1].request.op == op &&
                       batch[j + 1].request.port ==
                           batch[i].request.port)
                    ++j;
            }
            if (j > i && op == core::PortOp::Search &&
                cfg.adaptiveBatch && self.serialHold > 0) {
                // Backed off: recent runs found too little row sharing
                // to amortize the grouping work -- execute serially
                // (results identical) until the hold expires.
                --self.serialHold;
                ++self.adaptiveSerialRuns;
                for (std::size_t k = i; k <= j; ++k) {
                    execute(batch[k].request, batch[k].enqueued, index);
                    noteCompletion();
                }
            } else if (j > i && op == core::PortOp::Search) {
                executeSearchRun(batch.data() + i, j - i + 1, index);
                for (std::size_t k = i; k <= j; ++k)
                    noteCompletion();
            } else if (j > i) {
                executeInsertRun(batch.data() + i, j - i + 1, index);
                for (std::size_t k = i; k <= j; ++k)
                    noteCompletion();
            } else {
                execute(batch[i].request, batch[i].enqueued, index);
                noteCompletion();
            }
            i = j + 1;
        }
    }
}

bool
ParallelSearchEngine::submitRequest(const core::PortRequest &request)
{
    if (request.port >= ports.size())
        fatal(strprintf("submit to unknown virtual port %u",
                        request.port));
    if (stopped)
        return false;
    const auto now = std::chrono::steady_clock::now();
    if (cfg.workers == 0) {
        // Deterministic fallback: run inline on the calling thread.
        ++ports[request.port]->stats.submitted;
        execute(request, now, workerOf(request.port));
        return true;
    }
    inflight.fetch_add(1, std::memory_order_acq_rel);
    if (!workers[workerOf(request.port)]->queue.push(
            Job{request, now})) {
        noteCompletion(); // queue closed: roll the count back
        return false;
    }
    ++ports[request.port]->stats.submitted;
    return true;
}

bool
ParallelSearchEngine::submit(unsigned port, const Key &key, uint64_t tag)
{
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Search;
    req.key = key;
    req.tag = tag;
    return submitRequest(req);
}

bool
ParallelSearchEngine::trySubmit(unsigned port, const Key &key,
                                uint64_t tag)
{
    if (port >= ports.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    if (stopped)
        return false;
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Search;
    req.key = key;
    req.tag = tag;
    const auto now = std::chrono::steady_clock::now();
    if (cfg.workers == 0) {
        ++ports[port]->stats.submitted;
        execute(req, now, workerOf(port));
        return true;
    }
    inflight.fetch_add(1, std::memory_order_acq_rel);
    if (!workers[workerOf(port)]->queue.tryPush(Job{req, now})) {
        noteCompletion();
        return false;
    }
    ++ports[port]->stats.submitted;
    return true;
}

std::size_t
ParallelSearchEngine::submitBatch(
    std::span<const core::PortRequest> requests)
{
    std::size_t accepted = 0;
    for (const core::PortRequest &req : requests) {
        if (!submitRequest(req))
            break;
        ++accepted;
    }
    return accepted;
}

bool
ParallelSearchEngine::submitRebuild(unsigned port, uint64_t tag)
{
    core::PortRequest req;
    req.port = port;
    req.op = core::PortOp::Rebuild;
    req.tag = tag;
    return submitRequest(req);
}

core::InsertBatchSummary
ParallelSearchEngine::bulkLoad(unsigned port,
                               std::span<const core::Record> records,
                               core::InsertOutcome *outcomes,
                               const int *priorities)
{
    if (port >= ports.size())
        fatal(strprintf("bulk load to unknown virtual port %u", port));
    if (running)
        fatal("bulkLoad needs a stopped engine: a running port's "
              "database belongs to its worker thread");
    return sys->database(port).insertBatch(records, outcomes, priorities);
}

void
ParallelSearchEngine::drain()
{
    if (cfg.workers == 0 || !running)
        return; // inline mode is always drained
    std::unique_lock<std::mutex> lock(drainMutex);
    drainCv.wait(lock, [&] {
        return inflight.load(std::memory_order_acquire) == 0;
    });
}

void
ParallelSearchEngine::stop()
{
    if (stopped)
        return;
    if (running)
        drain();
    stopped = true;
    for (auto &w : workers)
        w->queue.close();
    for (std::thread &t : threads)
        t.join();
    threads.clear();
    running = false;
}

std::optional<core::PortResponse>
ParallelSearchEngine::fetchResult(unsigned port)
{
    if (port >= ports.size())
        fatal(strprintf("no results for unknown virtual port %u", port));
    PortState &state = *ports[port];
    std::lock_guard<std::mutex> lock(state.resultMutex);
    if (state.results.empty())
        return std::nullopt;
    core::PortResponse out = std::move(state.results.front());
    state.results.pop_front();
    return out;
}

const PortStats &
ParallelSearchEngine::portStats(unsigned port) const
{
    if (port >= ports.size())
        fatal(strprintf("no stats for unknown virtual port %u", port));
    return ports[port]->stats;
}

EngineReport
ParallelSearchEngine::report() const
{
    EngineReport out;
    out.workers = workerCount;
    uint64_t total_cycles = 0;
    uint64_t max_cycles = 0;
    for (const auto &w : workers) {
        total_cycles += w->modeledCycles;
        max_cycles = std::max(max_cycles, w->modeledCycles);
        out.batchedSearchRuns += w->batchedSearchRuns;
        out.adaptiveSerialRuns += w->adaptiveSerialRuns;
        out.batchedInsertRuns += w->batchedInsertRuns;
        out.ingest.merge(w->ingest);
    }
    for (const auto &p : ports)
        out.completed += p->stats.completed;
    // cycles / f_clk[MHz] = microseconds; lookups per microsecond = Msps.
    if (max_cycles > 0)
        out.modeledMsps = static_cast<double>(out.completed) /
                          max_cycles * cfg.timing.clockMhz;
    if (total_cycles > 0)
        out.modeledSerialMsps = static_cast<double>(out.completed) /
                                total_cycles * cfg.timing.clockMhz;
    if (out.modeledSerialMsps > 0.0)
        out.modeledSpeedup = out.modeledMsps / out.modeledSerialMsps;
    for (std::size_t p = 0; p < ports.size(); ++p) {
        out.analyticBoundMsps +=
            sys->database(static_cast<unsigned>(p))
                .searchBandwidthMsps(cfg.timing);
    }
    out.wallSeconds =
        wallEndNs.load(std::memory_order_relaxed) / 1e9;
    if (out.wallSeconds > 0.0)
        out.wallMsps = out.completed / out.wallSeconds / 1e6;
    return out;
}

} // namespace caram::engine
