#include "cognitive/chunk.h"

namespace caram::cognitive {

namespace {

/** Write @p bits bits of @p value at MSB position @p pos, fully cared. */
void
putField(Key &key, unsigned pos, unsigned bits, uint64_t value)
{
    for (unsigned b = 0; b < bits; ++b) {
        const bool bit = (value >> (bits - 1 - b)) & 1u;
        key.setBitAt(pos + b, bit, true);
    }
}

/** Mark @p bits bits at MSB position @p pos don't care. */
void
putWildcard(Key &key, unsigned pos, unsigned bits)
{
    for (unsigned b = 0; b < bits; ++b)
        key.setBitAt(pos + b, false, false);
}

/** Read @p bits bits at MSB position @p pos. */
uint64_t
getField(const Key &key, unsigned pos, unsigned bits)
{
    uint64_t out = 0;
    for (unsigned b = 0; b < bits; ++b)
        out = (out << 1) | (key.valueBitAt(pos + b) ? 1u : 0u);
    return out;
}

} // namespace

Key
Chunk::toKey() const
{
    Key key(kChunkKeyBits);
    putField(key, 0, kTypeBits, type);
    for (unsigned s = 0; s < kMaxSlots; ++s)
        putField(key, kTypeBits + s * kSlotBits, kSlotBits, slots[s]);
    return key;
}

Chunk
Chunk::fromKey(const Key &key, uint32_t id)
{
    Chunk chunk;
    chunk.type = static_cast<uint8_t>(getField(key, 0, kTypeBits));
    for (unsigned s = 0; s < kMaxSlots; ++s) {
        chunk.slots[s] = static_cast<uint16_t>(
            getField(key, kTypeBits + s * kSlotBits, kSlotBits));
    }
    chunk.id = id;
    return chunk;
}

bool
Chunk::operator==(const Chunk &other) const
{
    return type == other.type && slots == other.slots && id == other.id;
}

Key
RetrievalPattern::toKey() const
{
    Key key(kChunkKeyBits);
    if (type)
        putField(key, 0, kTypeBits, *type);
    else
        putWildcard(key, 0, kTypeBits);
    for (unsigned s = 0; s < kMaxSlots; ++s) {
        const unsigned pos = kTypeBits + s * kSlotBits;
        if (slots[s])
            putField(key, pos, kSlotBits, *slots[s]);
        else
            putWildcard(key, pos, kSlotBits);
    }
    return key;
}

bool
RetrievalPattern::matches(const Chunk &chunk) const
{
    if (type && *type != chunk.type)
        return false;
    for (unsigned s = 0; s < kMaxSlots; ++s) {
        if (slots[s] && *slots[s] != chunk.slots[s])
            return false;
    }
    return true;
}

unsigned
RetrievalPattern::constrainedSlots() const
{
    unsigned n = 0;
    for (const auto &slot : slots)
        n += slot ? 1 : 0;
    return n;
}

} // namespace caram::cognitive
