#include "cognitive/declarative_memory.h"

#include <algorithm>

#include "common/logging.h"
#include "hash/bit_select.h"

namespace caram::cognitive {

core::DatabaseConfig
DeclarativeMemory::makeConfig(const Config &config)
{
    core::DatabaseConfig cfg;
    cfg.name = "declarative-memory";
    cfg.sliceShape.indexBits = config.indexBits;
    cfg.sliceShape.logicalKeyBits = kChunkKeyBits;
    cfg.sliceShape.ternary = true;
    cfg.sliceShape.slotsPerBucket = config.slotsPerBucket;
    cfg.sliceShape.dataBits = 32; // the chunk id
    cfg.sliceShape.probe = core::ProbePolicy::Linear;
    cfg.sliceShape.maxProbeDistance =
        static_cast<unsigned>(cfg.sliceShape.rows() - 1);
    cfg.physicalSlices = config.physicalSlices;
    cfg.arrangement = config.arrangement;
    if (config.indexBits > 12 || config.indexBits > kSlotBits) {
        // Retrievals that leave slot 0 unconstrained fan out to
        // 2^indexBits buckets; keep that under the duplication cap.
        fatal("declarative memory index width limited to 12 bits");
    }
    cfg.indexFactory = [](const core::SliceConfig &eff)
        -> std::unique_ptr<hash::IndexGenerator> {
        // Hash the low bits of slot 0 (the retrieval cue): symbol ids
        // are small integers, so their low bits carry the entropy --
        // the same reasoning that picks the *last* R of the first 16
        // IP address bits in the paper.  The type is left out: its
        // cardinality is tiny and would waste index space.
        std::vector<unsigned> positions;
        for (unsigned p = kTypeBits + kSlotBits - eff.indexBits;
             p < kTypeBits + kSlotBits; ++p)
            positions.push_back(p);
        return std::make_unique<hash::BitSelectIndex>(
            kChunkKeyBits, std::move(positions));
    };
    return cfg;
}

DeclarativeMemory::DeclarativeMemory() : DeclarativeMemory(Config{})
{
}

DeclarativeMemory::DeclarativeMemory(const Config &config)
    : db(makeConfig(config))
{
}

bool
DeclarativeMemory::learn(const Chunk &chunk, int activation)
{
    return db.insert(core::Record{chunk.toKey(), chunk.id}, activation);
}

void
DeclarativeMemory::learnAll(std::span<const RatedChunk> chunks)
{
    std::vector<const RatedChunk *> order;
    order.reserve(chunks.size());
    for (const RatedChunk &rc : chunks)
        order.push_back(&rc);
    std::stable_sort(order.begin(), order.end(),
                     [](const RatedChunk *a, const RatedChunk *b) {
                         return a->activation > b->activation;
                     });
    for (const RatedChunk *rc : order) {
        if (!learn(rc->chunk, rc->activation))
            warn("declarative memory full; chunk dropped");
    }
}

std::optional<Chunk>
DeclarativeMemory::retrieve(const RetrievalPattern &pattern)
{
    ++retrievalCount;
    const auto r = db.search(pattern.toKey());
    accesses += r.bucketsAccessed;
    if (!r.hit)
        return std::nullopt;
    return Chunk::fromKey(r.key, static_cast<uint32_t>(r.data));
}

bool
DeclarativeMemory::forget(const Chunk &chunk)
{
    return db.erase(chunk.toKey()) > 0;
}

} // namespace caram::cognitive
