#ifndef CARAM_COGNITIVE_CHUNK_H_
#define CARAM_COGNITIVE_CHUNK_H_

/**
 * @file
 * ACT-R-style declarative chunks, the paper's stated future direction:
 * "a large-scale system implementing a cognitive model such as ACT-R
 * will benefit from employing CA-RAM, as it requires much search and
 * data evaluation capabilities" (section 6).
 *
 * A chunk is a typed record with a fixed number of symbolic slots.  A
 * retrieval request specifies some slots and leaves the rest
 * unconstrained -- exactly a ternary search: specified slots become
 * cared key bits, unconstrained slots become don't-care runs.
 */

#include <array>
#include <cstdint>
#include <optional>

#include "common/key.h"

namespace caram::cognitive {

/** Slots per chunk (ACT-R models typically use a handful). */
constexpr unsigned kMaxSlots = 6;
/** Bits per slot symbol. */
constexpr unsigned kSlotBits = 16;
/** Bits for the chunk type. */
constexpr unsigned kTypeBits = 8;
/** Key width: type followed by the slot symbols. */
constexpr unsigned kChunkKeyBits = kTypeBits + kMaxSlots * kSlotBits;

/** A declarative-memory chunk. */
struct Chunk
{
    uint8_t type = 0;
    /** Slot symbols; 0 plays ACT-R's "nil". */
    std::array<uint16_t, kMaxSlots> slots{};
    /** Chunk handle, returned by retrievals. */
    uint32_t id = 0;

    /** Fully specified key: [type][slot 0]...[slot K-1], MSB first. */
    Key toKey() const;

    /** Rebuild a chunk (minus id) from a stored key. */
    static Chunk fromKey(const Key &key, uint32_t id);

    bool operator==(const Chunk &other) const;
};

/** A retrieval request: constraints on the type and on some slots. */
struct RetrievalPattern
{
    std::optional<uint8_t> type;
    std::array<std::optional<uint16_t>, kMaxSlots> slots{};

    /** Ternary key: unconstrained fields are don't-care runs. */
    Key toKey() const;

    /** True when the chunk satisfies every constraint. */
    bool matches(const Chunk &chunk) const;

    /** Number of constrained slots (not counting the type). */
    unsigned constrainedSlots() const;
};

} // namespace caram::cognitive

#endif // CARAM_COGNITIVE_CHUNK_H_
