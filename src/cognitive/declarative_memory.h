#ifndef CARAM_COGNITIVE_DECLARATIVE_MEMORY_H_
#define CARAM_COGNITIVE_DECLARATIVE_MEMORY_H_

/**
 * @file
 * A CA-RAM-backed ACT-R-style declarative memory.
 *
 * Chunks live in a ternary CA-RAM database hashed on the type and the
 * first slot (the retrieval cue); a retrieval request is one ternary
 * search.  Chunks are placed in descending activation order so the
 * priority encoder returns the most active matching chunk -- the same
 * placement trick the paper uses for hot IP prefixes.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cognitive/chunk.h"
#include "core/database.h"

namespace caram::cognitive {

/** A chunk with its activation, for sorted bulk loading. */
struct RatedChunk
{
    Chunk chunk;
    int activation = 0; ///< quantized activation (higher retrieves first)
};

/** Declarative memory on CA-RAM. */
class DeclarativeMemory
{
  public:
    /** Geometry knobs. */
    struct Config
    {
        unsigned indexBits = 12;
        unsigned slotsPerBucket = 32;
        unsigned physicalSlices = 1;
        core::Arrangement arrangement = core::Arrangement::Horizontal;
    };

    DeclarativeMemory();
    explicit DeclarativeMemory(const Config &config);

    /** Add one chunk (its id is the payload). */
    bool learn(const Chunk &chunk, int activation = 0);

    /**
     * Bulk-load in descending activation order, so multi-match
     * retrievals return the most active chunk.
     */
    void learnAll(std::span<const RatedChunk> chunks);

    /**
     * Retrieve the winning chunk for a pattern, or nullopt on
     * retrieval failure.  Patterns leaving hashed fields unconstrained
     * fan out to multiple buckets, exactly like ternary search keys in
     * the paper's section 4 discussion.
     */
    std::optional<Chunk> retrieve(const RetrievalPattern &pattern);

    /** Remove a chunk; true when it was present. */
    bool forget(const Chunk &chunk);

    uint64_t size() const { return db.size(); }
    core::Database &database() { return db; }

    /** Buckets touched by retrievals so far. */
    uint64_t bucketsAccessed() const { return accesses; }
    uint64_t retrievals() const { return retrievalCount; }

  private:
    static core::DatabaseConfig makeConfig(const Config &config);

    core::Database db;
    uint64_t accesses = 0;
    uint64_t retrievalCount = 0;
};

} // namespace caram::cognitive

#endif // CARAM_COGNITIVE_DECLARATIVE_MEMORY_H_
