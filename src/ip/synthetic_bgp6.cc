#include "ip/synthetic_bgp6.h"

#include <unordered_set>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/random.h"

namespace caram::ip {

namespace {

/** Global-unicast RIR roots (top-16-bit value, weight). */
struct Root
{
    uint16_t top;
    unsigned length;
    double weight;
};

constexpr Root roots[] = {
    {0x2001, 16, 3.0}, {0x2002, 16, 0.5}, {0x2003, 16, 0.4},
    {0x2400, 12, 1.5}, {0x2600, 12, 1.5}, {0x2800, 12, 0.7},
    {0x2a00, 12, 1.8}, {0x2c00, 12, 0.4},
};

/** Prefix-length histogram (length, weight), early-IPv6 shaped. */
struct LenBin
{
    unsigned length;
    double weight;
};

// Minimum length 28: shorter super-aggregates barely occur, which
// keeps the CA-RAM duplication modest (the IPv4 table's min length 8
// against a 16-bit hash window plays the same role).
constexpr LenBin lenBins[] = {
    {28, 0.0008}, {29, 0.0008}, {30, 0.0015}, {31, 0.002}, {32, 0.23},
    {33, 0.01},   {34, 0.012},  {35, 0.012},  {36, 0.015}, {38, 0.012},
    {40, 0.035},  {42, 0.012},  {44, 0.025},  {46, 0.015}, {48, 0.44},
    {52, 0.008},  {56, 0.015},  {60, 0.008},  {64, 0.06},  {128, 0.004},
};

/** Set bit @p pos (MSB numbering over 128 bits) of (hi, lo). */
void
setAddrBit(uint64_t &hi, uint64_t &lo, unsigned pos)
{
    if (pos < 64)
        hi |= uint64_t{1} << (63 - pos);
    else
        lo |= uint64_t{1} << (127 - pos);
}

} // namespace

std::size_t
RoutingTable6::IdHash::operator()(const Id &id) const
{
    uint64_t h = id.hi * 0x9e3779b97f4a7c15ull;
    h ^= id.lo + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= id.len + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
}

bool
RoutingTable6::add(const Prefix6 &prefix)
{
    if (!dedup.insert(Id{prefix.hi, prefix.lo, prefix.length}).second)
        return false;
    prefixes_.push_back(prefix);
    return true;
}

bool
RoutingTable6::contains(const Prefix6 &prefix) const
{
    return dedup.find(Id{prefix.hi, prefix.lo, prefix.length}) !=
           dedup.end();
}

unsigned
RoutingTable6::minLength() const
{
    unsigned best = 0;
    bool first = true;
    for (const Prefix6 &p : prefixes_) {
        if (first || p.length < best) {
            best = p.length;
            first = false;
        }
    }
    return best;
}

double
RoutingTable6::fractionAtLeast(unsigned len) const
{
    if (prefixes_.empty())
        return 0.0;
    std::size_t n = 0;
    for (const Prefix6 &p : prefixes_)
        n += p.length >= len ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(prefixes_.size());
}

RoutingTable6
generateSyntheticBgp6Table(const SyntheticBgp6Config &config)
{
    if (config.prefixCount == 0)
        fatal("synthetic IPv6 table needs a nonzero prefix count");
    caram::Rng rng(config.seed);

    // Root sampling table.
    double root_total = 0.0;
    double root_cdf[std::size(roots)];
    for (std::size_t i = 0; i < std::size(roots); ++i) {
        root_total += roots[i].weight;
        root_cdf[i] = root_total;
    }
    auto pick_root = [&]() -> const Root & {
        const double u = rng.uniform() * root_total;
        for (std::size_t i = 0; i < std::size(roots); ++i) {
            if (u < root_cdf[i])
                return roots[i];
        }
        return roots[0];
    };

    // Length sampling table.
    double len_total = 0.0;
    double len_cdf[std::size(lenBins)];
    for (std::size_t i = 0; i < std::size(lenBins); ++i) {
        len_total += lenBins[i].weight;
        len_cdf[i] = len_total;
    }
    auto pick_length = [&]() {
        const double u = rng.uniform() * len_total;
        for (std::size_t i = 0; i < std::size(lenBins); ++i) {
            if (u < len_cdf[i])
                return lenBins[i].length;
        }
        return 48u;
    };

    // Allocation regions.
    struct Region
    {
        uint64_t hi;
        unsigned length;
    };
    auto make_region = [&](unsigned len_lo, unsigned len_hi) {
        const Root &root = pick_root();
        Region region;
        region.length =
            static_cast<unsigned>(rng.inRange(len_lo, len_hi));
        region.hi = static_cast<uint64_t>(root.top) << 48;
        for (unsigned p = root.length; p < region.length; ++p) {
            if (rng.chance(0.5))
                region.hi |= uint64_t{1} << (63 - p);
        }
        return region;
    };
    std::vector<Region> regions(config.regions);
    for (auto &region : regions)
        region = make_region(20, 32);
    std::vector<Region> hot(config.hotRegions);
    for (auto &region : hot)
        region = make_region(36, 44);
    caram::ZipfSampler region_pick(regions.size(), config.regionSkew);

    RoutingTable6 table;
    while (table.size() < config.prefixCount) {
        const bool from_hot =
            !hot.empty() && rng.chance(config.hotFraction);
        const Region &region = from_hot
            ? hot[rng.below(hot.size())]
            : regions[region_pick(rng)];
        unsigned len = pick_length();
        if (len < region.length)
            len = region.length; // site routes live inside allocations
        Prefix6 p;
        p.hi = region.hi;
        p.lo = 0;
        p.length = static_cast<uint8_t>(len);
        for (unsigned pos = region.length; pos < len; ++pos) {
            if (rng.chance(0.5))
                setAddrBit(p.hi, p.lo, pos);
        }
        p.nextHop = static_cast<uint32_t>(rng.inRange(1, 0xffff));
        p.canonicalize();
        table.add(p);
    }
    return table;
}

} // namespace caram::ip
