#ifndef CARAM_IP_SYNTHETIC_BGP_H_
#define CARAM_IP_SYNTHETIC_BGP_H_

/**
 * @file
 * Deterministic synthetic BGP routing-table generator.
 *
 * The paper uses the AS1103 table from RIPE's routing information
 * service (186,760 prefixes).  That table is not redistributable here,
 * so this generator reproduces its *published structural statistics*
 * (see DESIGN.md for the substitution argument):
 *
 *  - prefix count (186,760 by default);
 *  - minimum prefix length 8;
 *  - over 98% of prefixes at least 16 bits long (Huston [10]);
 *  - a 2006-era prefix-length histogram peaking at /24;
 *  - the short-prefix counts are set so that duplication into a CA-RAM
 *    whose hash bits cover positions [16-R, 16) (R >= 8) creates about
 *    +6.4% entries, the figure the paper reports;
 *  - clustered address allocation: prefixes concentrate in Zipf-weighted
 *    allocation regions, so bit-selection hashing sees realistic
 *    non-uniformity in the first 16 address bits.
 */

#include <cstdint>

#include "ip/routing_table.h"

namespace caram::ip {

/** Generator knobs. */
struct SyntheticBgpConfig
{
    /** Total prefixes to generate. */
    std::size_t prefixCount = 186760;

    /** Deterministic seed. */
    uint64_t seed = 0x5eed'b67bull;

    /**
     * Shallow allocation regions (the /8-/10 aggregates that hold most
     * of the table); their popularity is mildly Zipf-skewed.
     */
    unsigned regions = 900;

    /** Zipf exponent of shallow-region popularity. */
    double regionSkew = 0.6;

    /** Shallow region prefix lengths (inclusive range). */
    unsigned regionLenMin = 8;
    unsigned regionLenMax = 10;

    /**
     * Deep "hot" regions: dense allocations (e.g. busy /12-/14 blocks)
     * that produce the isolated overflowing bucket clusters the paper's
     * Table 2 shows under bit-selection hashing.
     */
    unsigned hotRegions = 70;
    unsigned hotRegionLenMin = 12;
    unsigned hotRegionLenMax = 15;

    /** Fraction of long prefixes drawn from hot regions. */
    double hotFraction = 0.32;

    /** Exact counts for the short prefixes (lengths 8..15).  These are
     *  chosen so the CA-RAM duplication overhead lands near the paper's
     *  +6.4% (12,035 extra entries on 186,760 prefixes). */
    unsigned shortCounts[8] = {8, 15, 30, 60, 120, 240, 250, 300};
};

/** Generate a synthetic table. */
RoutingTable generateSyntheticBgpTable(const SyntheticBgpConfig &config);

/**
 * Extra CA-RAM entries that don't-care hash bits create for this table,
 * assuming hash bits cover positions [16-R, 16) with R >= 8:
 * sum over prefixes shorter than 16 of (2^(16-len) - 1).
 */
uint64_t expectedDuplicates(const RoutingTable &table);

} // namespace caram::ip

#endif // CARAM_IP_SYNTHETIC_BGP_H_
