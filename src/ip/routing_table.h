#ifndef CARAM_IP_ROUTING_TABLE_H_
#define CARAM_IP_ROUTING_TABLE_H_

/**
 * @file
 * A forwarding/routing table: a deduplicated set of prefixes with the
 * summary statistics the paper's data mapping depends on (prefix count,
 * length histogram, fraction of prefixes at least 16 bits long).
 */

#include <cstdint>
#include <iosfwd>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "ip/prefix.h"

namespace caram::ip {

/** An in-memory routing table. */
class RoutingTable
{
  public:
    /** Add a prefix; returns false (no-op) when it already exists. */
    bool add(const Prefix &prefix);

    std::size_t size() const { return prefixes_.size(); }
    const std::vector<Prefix> &prefixes() const { return prefixes_; }

    /** True when (address, length) is present. */
    bool contains(const Prefix &prefix) const;

    /** Histogram of prefix lengths. */
    Histogram lengthHistogram() const;

    /** Fraction of prefixes with length >= @p len. */
    double fractionAtLeast(unsigned len) const;

    /** Shortest prefix length in the table (0 when empty). */
    unsigned minLength() const;

    /** Serialize as one "a.b.c.d/len nexthop" line per prefix. */
    void save(std::ostream &os) const;

    /** Parse the save() format; returns prefixes loaded. */
    std::size_t load(std::istream &is);

  private:
    std::vector<Prefix> prefixes_;
    std::unordered_set<uint64_t> ids_; ///< for dedup/contains
};

} // namespace caram::ip

#endif // CARAM_IP_ROUTING_TABLE_H_
