#ifndef CARAM_IP_SYNTHETIC_BGP6_H_
#define CARAM_IP_SYNTHETIC_BGP6_H_

/**
 * @file
 * Deterministic synthetic IPv6 routing-table generator, for the paper's
 * forward-looking remark that "the size of a routing table will even
 * quadruple as we adopt IPv6".
 *
 * Structure: prefixes concentrate under the global-unicast RIR roots
 * (2001::/16 and friends); allocation regions of /20../32 hold the
 * mass; the length histogram peaks at /32 (provider allocations) and
 * /48 (site routes) with a /64 shoulder, the published early-IPv6
 * shape.
 */

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ip/prefix6.h"

namespace caram::ip {

/** An in-memory IPv6 routing table (deduplicated). */
class RoutingTable6
{
  public:
    bool add(const Prefix6 &prefix);
    std::size_t size() const { return prefixes_.size(); }
    const std::vector<Prefix6> &prefixes() const { return prefixes_; }
    bool contains(const Prefix6 &prefix) const;
    unsigned minLength() const;
    double fractionAtLeast(unsigned len) const;

  private:
    struct Id
    {
        uint64_t hi, lo;
        uint8_t len;
        bool operator==(const Id &) const = default;
    };
    struct IdHash
    {
        std::size_t operator()(const Id &id) const;
    };

    std::vector<Prefix6> prefixes_;
    std::unordered_set<Id, IdHash> dedup;
};

/** Generator knobs. */
struct SyntheticBgp6Config
{
    /** "will even quadruple": 4 x the AS1103 IPv4 table by default. */
    std::size_t prefixCount = 4 * 186760;

    uint64_t seed = 0x6b6b6bull;

    /** Allocation regions under the RIR roots. */
    unsigned regions = 2500;
    double regionSkew = 0.6;

    /** Hot dense regions (as in the IPv4 generator). */
    unsigned hotRegions = 150;
    double hotFraction = 0.25;
};

/** Generate a synthetic IPv6 table. */
RoutingTable6 generateSyntheticBgp6Table(const SyntheticBgp6Config &config);

} // namespace caram::ip

#endif // CARAM_IP_SYNTHETIC_BGP6_H_
