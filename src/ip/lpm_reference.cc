#include "ip/lpm_reference.h"

namespace caram::ip {

struct LpmTrie::Node
{
    std::unique_ptr<Node> child[2];
    std::optional<Prefix> entry;
};

LpmTrie::LpmTrie() : root(std::make_unique<Node>())
{
}

LpmTrie::~LpmTrie() = default;

void
LpmTrie::insert(const Prefix &prefix)
{
    Node *node = root.get();
    for (unsigned depth = 0; depth < prefix.length; ++depth) {
        const unsigned bit = (prefix.address >> (31 - depth)) & 1u;
        if (!node->child[bit])
            node->child[bit] = std::make_unique<Node>();
        node = node->child[bit].get();
    }
    if (!node->entry)
        ++count;
    node->entry = prefix;
}

void
LpmTrie::insertAll(const RoutingTable &table)
{
    for (const Prefix &p : table.prefixes())
        insert(p);
}

std::optional<Prefix>
LpmTrie::lookup(uint32_t address) const
{
    ++lookupCount;
    const Node *node = root.get();
    std::optional<Prefix> best = node->entry;
    for (unsigned depth = 0; depth < 32 && node; ++depth) {
        const unsigned bit = (address >> (31 - depth)) & 1u;
        node = node->child[bit].get();
        if (!node)
            break;
        ++visits;
        if (node->entry)
            best = node->entry;
    }
    return best;
}

bool
LpmTrie::erase(const Prefix &prefix)
{
    Node *node = root.get();
    for (unsigned depth = 0; depth < prefix.length && node; ++depth) {
        const unsigned bit = (prefix.address >> (31 - depth)) & 1u;
        node = node->child[bit].get();
    }
    if (!node || !node->entry || !node->entry->samePrefix(prefix))
        return false;
    node->entry.reset();
    --count;
    return true;
}

double
LpmTrie::meanAccessesPerLookup() const
{
    return lookupCount == 0
        ? 0.0
        : static_cast<double>(visits) / static_cast<double>(lookupCount);
}

} // namespace caram::ip
