#include "ip/traffic.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"

namespace caram::ip {

IpTrafficGenerator::IpTrafficGenerator(const RoutingTable &table,
                                       std::vector<double> weights,
                                       uint64_t seed)
    : table_(&table), rng(seed)
{
    if (table.size() == 0)
        fatal("traffic generator needs a nonempty routing table");
    if (weights.empty())
        weights.assign(table.size(), 1.0);
    if (weights.size() != table.size())
        fatal("traffic weights must match the table size");
    cdf.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        total += weights[i];
        cdf[i] = total;
    }
    for (auto &v : cdf)
        v /= total;
    cdf.back() = 1.0;
}

uint32_t
IpTrafficGenerator::next()
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    lastIndex = static_cast<std::size_t>(it - cdf.begin());
    const Prefix &p = table_->prefixes()[lastIndex];
    uint32_t addr = p.address;
    if (p.length < 32) {
        const unsigned host_bits = 32 - p.length;
        addr |= static_cast<uint32_t>(rng.below(uint64_t{1} << host_bits));
    }
    return addr;
}

Ip6TrafficGenerator::Ip6TrafficGenerator(const RoutingTable6 &table,
                                         std::vector<double> weights,
                                         uint64_t seed)
    : table_(&table), rng(seed)
{
    if (table.size() == 0)
        fatal("traffic generator needs a nonempty routing table");
    if (weights.empty())
        weights.assign(table.size(), 1.0);
    if (weights.size() != table.size())
        fatal("traffic weights must match the table size");
    cdf.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        total += weights[i];
        cdf[i] = total;
    }
    for (auto &v : cdf)
        v /= total;
    cdf.back() = 1.0;
}

std::pair<uint64_t, uint64_t>
Ip6TrafficGenerator::next()
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    lastIndex = static_cast<std::size_t>(it - cdf.begin());
    const Prefix6 &p = table_->prefixes()[lastIndex];
    lastHi = p.hi;
    lastLo = p.lo;
    for (unsigned pos = p.length; pos < 128; ++pos) {
        if (rng.chance(0.5)) {
            if (pos < 64)
                lastHi |= uint64_t{1} << (63 - pos);
            else
                lastLo |= uint64_t{1} << (127 - pos);
        }
    }
    return {lastHi, lastLo};
}

Key
Ip6TrafficGenerator::lastKey() const
{
    Key addr(128);
    for (unsigned b = 0; b < 64; ++b) {
        addr.setBitAt(b, (lastHi >> (63 - b)) & 1u);
        addr.setBitAt(64 + b, (lastLo >> (63 - b)) & 1u);
    }
    return addr;
}

} // namespace caram::ip
