#ifndef CARAM_IP_TRAFFIC_H_
#define CARAM_IP_TRAFFIC_H_

/**
 * @file
 * Lookup traffic for the IP application: addresses drawn from the
 * routing table's prefixes, under a uniform or skewed (Zipf) access
 * pattern, with random host bits.
 */

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "ip/routing_table.h"
#include "ip/synthetic_bgp6.h"

namespace caram::ip {

/** Generates destination addresses covered by a routing table. */
class IpTrafficGenerator
{
  public:
    /**
     * @param table   routing table the traffic must hit
     * @param weights per-prefix weights (empty = uniform); need not be
     *                normalized
     * @param seed    deterministic stream seed
     */
    IpTrafficGenerator(const RoutingTable &table,
                       std::vector<double> weights = {},
                       uint64_t seed = 0x7aff1cull);

    /** Next destination address. */
    uint32_t next();

    /** The prefix index the last next() drew from. */
    std::size_t lastPrefixIndex() const { return lastIndex; }

  private:
    const RoutingTable *table_;
    std::vector<double> cdf;
    caram::Rng rng;
    std::size_t lastIndex = 0;
};

/** Generates IPv6 destination addresses covered by a routing table. */
class Ip6TrafficGenerator
{
  public:
    /**
     * @param table   IPv6 routing table the traffic must hit
     * @param weights per-prefix weights (empty = uniform)
     * @param seed    deterministic stream seed
     */
    Ip6TrafficGenerator(const RoutingTable6 &table,
                        std::vector<double> weights = {},
                        uint64_t seed = 0x7aff6ull);

    /** Next destination address as (hi, lo) and a 128-bit key. */
    std::pair<uint64_t, uint64_t> next();

    /** The 128-bit search key of the last next(). */
    Key lastKey() const;

    /** The prefix index the last next() drew from. */
    std::size_t lastPrefixIndex() const { return lastIndex; }

  private:
    const RoutingTable6 *table_;
    std::vector<double> cdf;
    caram::Rng rng;
    std::size_t lastIndex = 0;
    uint64_t lastHi = 0;
    uint64_t lastLo = 0;
};

} // namespace caram::ip

#endif // CARAM_IP_TRAFFIC_H_
