#ifndef CARAM_IP_PREFIX_H_
#define CARAM_IP_PREFIX_H_

/**
 * @file
 * IPv4 prefixes for the IP address lookup application (paper section
 * 4.1).  "An entry in the forwarding table is called a prefix, a binary
 * string of a certain length (also called prefix length), followed by a
 * number of don't care bits."
 */

#include <cstdint>
#include <optional>
#include <string>

#include "common/key.h"

namespace caram::ip {

/** One forwarding-table entry. */
struct Prefix
{
    uint32_t address = 0; ///< network-order value; bits below length are 0
    uint8_t length = 0;   ///< prefix length, 0..32
    uint32_t nextHop = 0; ///< forwarding data

    /** Ternary 32-bit key: top @c length bits specified, rest X. */
    Key toKey() const;

    /** True when @p addr falls under this prefix. */
    bool matchesAddress(uint32_t addr) const;

    /** Identity ignores the next hop. */
    bool samePrefix(const Prefix &other) const
    {
        return address == other.address && length == other.length;
    }

    /** "a.b.c.d/len". */
    std::string toString() const;

    /** Parse "a.b.c.d/len"; nullopt on malformed input. */
    static std::optional<Prefix> parse(const std::string &text);

    /** Canonical 64-bit id (address << 8 | length) for sets/maps. */
    uint64_t id() const
    {
        return (static_cast<uint64_t>(address) << 8) | length;
    }
};

} // namespace caram::ip

#endif // CARAM_IP_PREFIX_H_
