#ifndef CARAM_IP_IP_CARAM_H_
#define CARAM_IP_IP_CARAM_H_

/**
 * @file
 * CA-RAM data mapping for IP address lookup (paper section 4.1).
 *
 * Keys are 32-bit ternary prefixes (stored N = 64 bits); the hash is
 * bit selection restricted to the first 16 address bits; prefixes with
 * don't-care bits in hash positions are duplicated; buckets are built
 * in (prefix length desc, access frequency desc) order so that the
 * priority encoder performs LPM and hot prefixes avoid spilling; bucket
 * overflows use linear probing or a victim TCAM searched in parallel.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "ip/routing_table.h"

namespace caram::ip {

/** One row of the paper's Table 2: a CA-RAM design point. */
struct IpDesignSpec
{
    std::string label;           ///< "A".."F"
    unsigned indexBitsPerSlice;  ///< R of each physical slice
    unsigned slotsPerSlice;      ///< keys per bucket of each slice
    unsigned slices;             ///< number of physical slices
    core::Arrangement arrangement = core::Arrangement::Horizontal;
    core::OverflowPolicy overflow = core::OverflowPolicy::Probing;
    std::size_t overflowCapacity = 0; ///< for ParallelTcam designs
    unsigned dataBits = 16;      ///< next-hop field stored with the key

    /**
     * Use hash bits chosen by the Zane-style optimizer instead of the
     * paper's final pick (the last R bits of the first 16).
     */
    bool optimizeHashBits = false;
};

/** Everything Table 2 reports about one design, measured. */
struct IpMappingResult
{
    std::string label;
    core::SliceConfig effective;
    std::unique_ptr<core::Database> db;

    uint64_t prefixes = 0;        ///< original table size
    uint64_t placedRecords = 0;   ///< CA-RAM copies placed
    uint64_t duplicates = 0;      ///< extra copies due to don't-care bits
    uint64_t overflowEntries = 0; ///< victim-TCAM entries
    uint64_t failedPrefixes = 0;  ///< prefixes that could not be placed

    double loadFactorNominal = 0.0; ///< paper's alpha: prefixes/(M*S)
    double overflowingBucketFraction = 0.0;
    double spilledRecordFraction = 0.0;
    double amalUniform = 0.0; ///< AMALu
    double amalSkewed = 0.0;  ///< AMALs (frequency-aware placement)
    /**
     * Weighted AMAL when placement ignores access frequency (sorted on
     * length only).  amalSkewed <= amalSkewedBlind shows the paper's
     * point that "access patterns can be taken into account in CA-RAM
     * design to improve the lookup latency".
     */
    double amalSkewedBlind = 0.0;

    core::LoadStats stats;
};

/** Maps a routing table onto CA-RAM design points. */
class IpCaRamMapper
{
  public:
    /**
     * @param table the routing table to map
     * @param seed  seed for the skewed access-weight assignment
     * @param skew  Zipf exponent of the skewed access pattern
     *              (Narlikar-Zane-style [22])
     */
    explicit IpCaRamMapper(const RoutingTable &table,
                           uint64_t seed = 0xacce55ull, double skew = 0.7);

    /** Build one design and measure it. */
    IpMappingResult map(const IpDesignSpec &spec) const;

    /** Per-prefix access weights (parallel to table().prefixes()). */
    const std::vector<double> &accessWeights() const { return weights; }

    const RoutingTable &table() const { return *table_; }

  private:
    const RoutingTable *table_;
    std::vector<double> weights;
};

} // namespace caram::ip

#endif // CARAM_IP_IP_CARAM_H_
