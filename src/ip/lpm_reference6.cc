#include "ip/lpm_reference6.h"

namespace caram::ip {

struct LpmTrie6::Node
{
    std::unique_ptr<Node> child[2];
    std::optional<Prefix6> entry;
};

LpmTrie6::LpmTrie6() : root(std::make_unique<Node>())
{
}

LpmTrie6::~LpmTrie6() = default;

bool
LpmTrie6::addrBit(uint64_t hi, uint64_t lo, unsigned pos)
{
    return pos < 64 ? (hi >> (63 - pos)) & 1u
                    : (lo >> (127 - pos)) & 1u;
}

void
LpmTrie6::insert(const Prefix6 &prefix)
{
    Node *node = root.get();
    for (unsigned depth = 0; depth < prefix.length; ++depth) {
        const unsigned bit = addrBit(prefix.hi, prefix.lo, depth);
        if (!node->child[bit])
            node->child[bit] = std::make_unique<Node>();
        node = node->child[bit].get();
    }
    if (!node->entry)
        ++count;
    node->entry = prefix;
}

void
LpmTrie6::insertAll(const RoutingTable6 &table)
{
    for (const Prefix6 &p : table.prefixes())
        insert(p);
}

std::optional<Prefix6>
LpmTrie6::lookup(uint64_t hi, uint64_t lo) const
{
    const Node *node = root.get();
    std::optional<Prefix6> best = node->entry;
    for (unsigned depth = 0; depth < 128 && node; ++depth) {
        const unsigned bit = addrBit(hi, lo, depth);
        node = node->child[bit].get();
        if (!node)
            break;
        if (node->entry)
            best = node->entry;
    }
    return best;
}

bool
LpmTrie6::erase(const Prefix6 &prefix)
{
    Node *node = root.get();
    for (unsigned depth = 0; depth < prefix.length && node; ++depth) {
        const unsigned bit = addrBit(prefix.hi, prefix.lo, depth);
        node = node->child[bit].get();
    }
    if (!node || !node->entry || !node->entry->samePrefix(prefix))
        return false;
    node->entry.reset();
    --count;
    return true;
}

} // namespace caram::ip
