#ifndef CARAM_IP_LPM_REFERENCE_H_
#define CARAM_IP_LPM_REFERENCE_H_

/**
 * @file
 * Software longest-prefix-match reference: a binary trie, used both as
 * the correctness oracle for the CA-RAM/TCAM forwarding engines and as
 * the "software-based scheme" baseline the paper contrasts against
 * ("usually require at least 4 to 6 memory accesses for forwarding one
 * packet").  Node visits are counted to expose that cost.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "ip/prefix.h"
#include "ip/routing_table.h"

namespace caram::ip {

/** Binary (unibit) trie over IPv4 prefixes. */
class LpmTrie
{
  public:
    LpmTrie();
    ~LpmTrie();
    LpmTrie(const LpmTrie &) = delete;
    LpmTrie &operator=(const LpmTrie &) = delete;

    /** Insert or overwrite a prefix. */
    void insert(const Prefix &prefix);

    /** Insert a whole table. */
    void insertAll(const RoutingTable &table);

    /** Longest-prefix match; nullopt on default-route miss. */
    std::optional<Prefix> lookup(uint32_t address) const;

    /** Remove a prefix; true when it was present. */
    bool erase(const Prefix &prefix);

    std::size_t size() const { return count; }

    /** Trie nodes visited by lookups (memory-access proxy). */
    uint64_t nodesVisited() const { return visits; }
    uint64_t lookups() const { return lookupCount; }

    /** Mean trie depth walked per lookup so far. */
    double meanAccessesPerLookup() const;

  private:
    struct Node;
    std::unique_ptr<Node> root;
    std::size_t count = 0;
    mutable uint64_t visits = 0;
    mutable uint64_t lookupCount = 0;
};

} // namespace caram::ip

#endif // CARAM_IP_LPM_REFERENCE_H_
