#ifndef CARAM_IP_LPM_REFERENCE6_H_
#define CARAM_IP_LPM_REFERENCE6_H_

/**
 * @file
 * IPv6 longest-prefix-match reference: a 128-level binary trie, the
 * correctness oracle for the IPv6 CA-RAM forwarding engine.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "ip/prefix6.h"
#include "ip/synthetic_bgp6.h"

namespace caram::ip {

/** Binary trie over IPv6 prefixes. */
class LpmTrie6
{
  public:
    LpmTrie6();
    ~LpmTrie6();
    LpmTrie6(const LpmTrie6 &) = delete;
    LpmTrie6 &operator=(const LpmTrie6 &) = delete;

    void insert(const Prefix6 &prefix);
    void insertAll(const RoutingTable6 &table);

    /** Longest-prefix match of (hi, lo); nullopt on miss. */
    std::optional<Prefix6> lookup(uint64_t hi, uint64_t lo) const;

    bool erase(const Prefix6 &prefix);
    std::size_t size() const { return count; }

  private:
    struct Node;
    static bool addrBit(uint64_t hi, uint64_t lo, unsigned pos);

    std::unique_ptr<Node> root;
    std::size_t count = 0;
};

} // namespace caram::ip

#endif // CARAM_IP_LPM_REFERENCE6_H_
