#include "ip/ip_caram.h"

#include <algorithm>
#include <numeric>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/random.h"
#include "hash/bit_select.h"
#include "hash/bit_selection_optimizer.h"

namespace caram::ip {

IpCaRamMapper::IpCaRamMapper(const RoutingTable &table, uint64_t seed,
                             double skew)
    : table_(&table)
{
    // Skewed access pattern: Zipf popularity over a random permutation
    // of the prefixes (the paper's AMALs column; "although the skewed
    // access pattern we use is an artifact...").  ZipfStream reproduces
    // this mapper's original rank/permutation pattern bit for bit.
    const std::size_t n = table.size();
    weights.assign(n, 1.0);
    if (n == 0)
        return;
    weights = caram::ZipfStream(n, skew, seed).weights();
}

IpMappingResult
IpCaRamMapper::map(const IpDesignSpec &spec) const
{
    core::SliceConfig shape;
    shape.indexBits = spec.indexBitsPerSlice;
    shape.logicalKeyBits = 32;
    shape.ternary = true;
    shape.slotsPerBucket = spec.slotsPerSlice;
    shape.dataBits = spec.dataBits;
    shape.probe = core::ProbePolicy::Linear;
    shape.lpm = true;

    core::DatabaseConfig db_cfg;
    db_cfg.name = "ip-" + spec.label;
    db_cfg.sliceShape = shape;
    db_cfg.physicalSlices = spec.slices;
    db_cfg.arrangement = spec.arrangement;
    db_cfg.overflow = spec.overflow;
    db_cfg.overflowCapacity = spec.overflowCapacity;

    // The hash function: bit selection over the first 16 address bits.
    std::vector<unsigned> positions;
    if (spec.optimizeHashBits) {
        std::vector<hash::WindowKey> window_keys;
        window_keys.reserve(table_->size());
        for (const Prefix &p : table_->prefixes()) {
            hash::WindowKey wk;
            wk.value = (p.address >> 16) & 0xffff;
            wk.care = p.length >= 16
                ? 0xffffu
                : static_cast<uint32_t>(maskBits(p.length))
                      << (16 - p.length);
            window_keys.push_back(wk);
        }
        const unsigned eff_r =
            db_cfg.effectiveConfig().indexBits;
        hash::BitSelectionOptimizer opt(16);
        positions = opt.choose(window_keys, eff_r);
    }
    db_cfg.indexFactory =
        [positions](const core::SliceConfig &eff)
        -> std::unique_ptr<hash::IndexGenerator> {
        if (!positions.empty()) {
            return std::make_unique<hash::BitSelectIndex>(32, positions);
        }
        // The paper's final choice: the last R bits of the first 16.
        return std::make_unique<hash::BitSelectIndex>(
            hash::BitSelectIndex::lastBitsOfFirst16(32, eff.indexBits));
    };

    IpMappingResult out;
    out.label = spec.label;
    out.effective = db_cfg.effectiveConfig();
    // The probe window: the whole row space (the paper's linear probing
    // is unbounded).
    db_cfg.sliceShape.maxProbeDistance = 0; // set on effective below
    {
        // maxProbeDistance applies to the effective config; push it into
        // the shape so arranged() keeps it valid for every arrangement.
        const uint64_t eff_rows = out.effective.rows();
        const uint64_t shape_rows = shape.rows();
        const unsigned max_probe = static_cast<unsigned>(
            std::min<uint64_t>(shape_rows - 1, eff_rows - 1));
        db_cfg.sliceShape.maxProbeDistance = max_probe;
        out.effective = db_cfg.effectiveConfig();
    }
    out.db = std::make_unique<core::Database>(db_cfg);
    out.prefixes = table_->size();

    // Build order: prefix length descending (LPM via the priority
    // encoder), then access frequency descending (hot prefixes stay in
    // their home bucket).
    std::vector<std::size_t> order(table_->size());
    std::iota(order.begin(), order.end(), 0);
    const auto &prefixes = table_->prefixes();
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (prefixes[a].length != prefixes[b].length)
                      return prefixes[a].length > prefixes[b].length;
                  return weights[a] > weights[b];
              });

    // Populate a database following @p build_order; returns
    // {AMALu, AMALs} and updates failure/duplicate counters when
    // @p primary.
    const auto populate = [&](core::Database &db,
                              const std::vector<std::size_t> &build_order,
                              bool primary) {
        double cost_uniform = 0.0;
        double cost_skewed = 0.0;
        double weight_total = 0.0;
        uint64_t ok_prefixes = 0;
        for (std::size_t idx : build_order) {
            const Prefix &p = prefixes[idx];
            core::Record rec{p.toKey(), p.nextHop};
            const auto det = db.insertDetailed(rec, p.length);
            if (!det.ok) {
                if (primary)
                    ++out.failedPrefixes;
                continue;
            }
            ++ok_prefixes;
            if (primary)
                out.duplicates += det.copies + det.tcamCopies - 1;
            cost_uniform += det.meanAccessCost;
            cost_skewed += weights[idx] * det.meanAccessCost;
            weight_total += weights[idx];
        }
        const double amal_u = ok_prefixes == 0
            ? 0.0
            : cost_uniform / static_cast<double>(ok_prefixes);
        const double amal_s =
            weight_total == 0.0 ? 0.0 : cost_skewed / weight_total;
        return std::pair<double, double>(amal_u, amal_s);
    };

    const auto [amal_u, amal_s] = populate(*out.db, order, true);

    // Frequency-blind reference placement: same length ordering, but
    // ties broken by table position instead of access frequency.
    {
        std::vector<std::size_t> blind(table_->size());
        std::iota(blind.begin(), blind.end(), 0);
        std::stable_sort(blind.begin(), blind.end(),
                         [&](std::size_t a, std::size_t b) {
                             return prefixes[a].length >
                                    prefixes[b].length;
                         });
        core::Database reference(db_cfg);
        const auto [ref_u, ref_s] = populate(reference, blind, false);
        (void)ref_u;
        out.amalSkewedBlind = ref_s;
    }

    out.stats = out.db->loadStats();
    out.placedRecords = out.stats.records;
    out.overflowEntries = out.db->overflowEntries();
    out.loadFactorNominal =
        static_cast<double>(out.prefixes) /
        static_cast<double>(out.effective.capacity());
    out.overflowingBucketFraction = out.stats.overflowingBucketFraction();
    out.spilledRecordFraction = out.stats.spilledRecordFraction();
    out.amalUniform = amal_u;
    out.amalSkewed = amal_s;
    return out;
}

} // namespace caram::ip
