#include "ip/prefix.h"

#include <cstdio>

#include "common/bitops.h"
#include "common/strings.h"

namespace caram::ip {

Key
Prefix::toKey() const
{
    return Key::prefix(address, length, 32);
}

bool
Prefix::matchesAddress(uint32_t addr) const
{
    if (length == 0)
        return true;
    const uint32_t mask = static_cast<uint32_t>(maskBits(length))
                          << (32 - length);
    return ((addr ^ address) & mask) == 0;
}

std::string
Prefix::toString() const
{
    return strprintf("%u.%u.%u.%u/%u", (address >> 24) & 0xff,
                     (address >> 16) & 0xff, (address >> 8) & 0xff,
                     address & 0xff, length);
}

std::optional<Prefix>
Prefix::parse(const std::string &text)
{
    unsigned a, b, c, d, len;
    if (std::sscanf(text.c_str(), "%u.%u.%u.%u/%u", &a, &b, &c, &d, &len) !=
        5)
        return std::nullopt;
    if (a > 255 || b > 255 || c > 255 || d > 255 || len > 32)
        return std::nullopt;
    Prefix p;
    p.address = (a << 24) | (b << 16) | (c << 8) | d;
    p.length = static_cast<uint8_t>(len);
    // Canonicalize: zero the bits below the prefix length.
    if (len < 32)
        p.address &= ~static_cast<uint32_t>(maskBits(32 - len));
    return p;
}

} // namespace caram::ip
