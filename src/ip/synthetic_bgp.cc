#include "ip/synthetic_bgp.h"

#include <algorithm>
#include <vector>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/random.h"

namespace caram::ip {

namespace {

/**
 * 2006-era distribution of prefix lengths 16..32 (fractions; normalized
 * at use).  The mass peaks at /24, matching published BGP table
 * analyses (Huston [10]).
 */
constexpr double longLengthWeights[17] = {
    0.075, // 16
    0.025, // 17
    0.040, // 18
    0.080, // 19
    0.050, // 20
    0.050, // 21
    0.060, // 22
    0.055, // 23
    0.535, // 24
    0.004, // 25
    0.005, // 26
    0.003, // 27
    0.003, // 28
    0.004, // 29
    0.005, // 30
    0.0005, // 31
    0.0055, // 32
};

/** An address-allocation cluster. */
struct Region
{
    uint32_t base;
    unsigned length;
};

/** First-octet ranges with era-plausible weights. */
struct OctetRange
{
    unsigned lo, hi;
    double weight;
};

constexpr OctetRange octetRanges[] = {
    {24, 62, 2.0},    // legacy class A/B space in active use
    {63, 99, 1.5},
    {128, 172, 1.8},  // class B space
    {189, 223, 2.2},  // class C space, densest allocations
};

unsigned
sampleFirstOctet(caram::Rng &rng)
{
    double total = 0.0;
    for (const auto &r : octetRanges)
        total += r.weight * (r.hi - r.lo + 1);
    double pick = rng.uniform() * total;
    for (const auto &r : octetRanges) {
        const double mass = r.weight * (r.hi - r.lo + 1);
        if (pick < mass) {
            return r.lo +
                   static_cast<unsigned>(pick / r.weight);
        }
        pick -= mass;
    }
    return octetRanges[0].lo;
}

} // namespace

RoutingTable
generateSyntheticBgpTable(const SyntheticBgpConfig &config)
{
    if (config.prefixCount == 0)
        fatal("synthetic BGP table needs a nonzero prefix count");
    caram::Rng rng(config.seed);

    auto make_region = [&rng](unsigned len_min, unsigned len_max) {
        Region region;
        region.length =
            static_cast<unsigned>(rng.inRange(len_min, len_max));
        const uint32_t octet = sampleFirstOctet(rng);
        uint32_t base = octet << 24;
        if (region.length > 8) {
            const unsigned extra = region.length - 8;
            const auto bits = static_cast<uint32_t>(rng.below(
                uint64_t{1} << extra));
            base |= bits << (24 - extra);
        }
        region.base = base;
        return region;
    };

    // Shallow allocation regions with mild Zipf popularity.
    std::vector<Region> regions(config.regions);
    for (auto &region : regions)
        region = make_region(config.regionLenMin, config.regionLenMax);
    caram::ZipfSampler region_pick(regions.size(), config.regionSkew);

    // Deep hot regions: equally weighted dense allocations.
    std::vector<Region> hot(config.hotRegions);
    for (auto &region : hot)
        region = make_region(config.hotRegionLenMin,
                             config.hotRegionLenMax);

    RoutingTable table;

    auto random_hop = [&rng]() {
        return static_cast<uint32_t>(rng.inRange(1, 0xffff));
    };

    // Exact short-prefix population (lengths 8..15).
    for (unsigned len = 8; len <= 15; ++len) {
        const unsigned want = config.shortCounts[len - 8];
        unsigned made = 0;
        while (made < want) {
            Prefix p;
            p.length = static_cast<uint8_t>(len);
            const uint32_t octet = sampleFirstOctet(rng);
            uint32_t addr = octet << 24;
            if (len > 8) {
                const unsigned extra = len - 8;
                const auto bits = static_cast<uint32_t>(
                    rng.below(uint64_t{1} << extra));
                addr |= bits << (24 - extra);
            }
            p.address = addr;
            p.nextHop = random_hop();
            if (table.add(p))
                ++made;
        }
    }

    // Long prefixes, clustered into regions.
    std::vector<double> cdf(17);
    double total = 0.0;
    for (unsigned i = 0; i < 17; ++i) {
        total += longLengthWeights[i];
        cdf[i] = total;
    }
    auto sample_length = [&]() {
        const double u = rng.uniform() * total;
        for (unsigned i = 0; i < 17; ++i) {
            if (u < cdf[i])
                return 16u + i;
        }
        return 32u;
    };

    while (table.size() < config.prefixCount) {
        const bool from_hot =
            !hot.empty() && rng.chance(config.hotFraction);
        const Region &region =
            from_hot ? hot[rng.below(hot.size())]
                     : regions[region_pick(rng)];
        const unsigned len = sample_length();
        Prefix p;
        p.length = static_cast<uint8_t>(len);
        // Region top bits, then random bits down to the prefix length.
        uint32_t addr =
            region.base &
            ~static_cast<uint32_t>(maskBits(32 - region.length));
        if (len > region.length) {
            const unsigned extra = len - region.length;
            const auto bits = static_cast<uint32_t>(
                rng.below(uint64_t{1} << extra));
            addr |= bits << (32 - region.length - extra);
        }
        if (len < 32)
            addr &= ~static_cast<uint32_t>(maskBits(32 - len));
        p.address = addr;
        p.nextHop = random_hop();
        table.add(p); // duplicates are simply retried
    }
    return table;
}

uint64_t
expectedDuplicates(const RoutingTable &table)
{
    uint64_t extra = 0;
    for (const Prefix &p : table.prefixes()) {
        if (p.length < 16)
            extra += (uint64_t{1} << (16 - p.length)) - 1;
    }
    return extra;
}

} // namespace caram::ip
