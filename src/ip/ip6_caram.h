#ifndef CARAM_IP_IP6_CARAM_H_
#define CARAM_IP_IP6_CARAM_H_

/**
 * @file
 * CA-RAM data mapping for IPv6 address lookup -- the paper's "the size
 * of a routing table will even quadruple as we adopt IPv6" scenario.
 *
 * Keys are 128-bit ternary prefixes (stored N = 256 bits); the hash is
 * bit selection over the last R bits of the first 32 address bits
 * (nearly all prefixes are at least /32, the provider-allocation
 * boundary, just as nearly all IPv4 prefixes are at least /16);
 * shorter prefixes are duplicated exactly as in the IPv4 mapping.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "ip/synthetic_bgp6.h"

namespace caram::ip {

/** An IPv6 CA-RAM design point. */
struct Ip6DesignSpec
{
    std::string label;
    unsigned indexBitsPerSlice = 14;
    unsigned slotsPerSlice = 16; ///< 256-bit stored keys: fewer per row
    unsigned slices = 4;
    core::Arrangement arrangement = core::Arrangement::Horizontal;
    unsigned dataBits = 16;
};

/** Measured results for one IPv6 design. */
struct Ip6MappingResult
{
    std::string label;
    core::SliceConfig effective;
    std::unique_ptr<core::Database> db;

    uint64_t prefixes = 0;
    uint64_t duplicates = 0;
    uint64_t failedPrefixes = 0;
    double loadFactorNominal = 0.0;
    double overflowingBucketFraction = 0.0;
    double spilledRecordFraction = 0.0;
    double amalUniform = 0.0;

    core::LoadStats stats;
};

/** Maps an IPv6 table onto CA-RAM design points. */
class Ip6CaRamMapper
{
  public:
    explicit Ip6CaRamMapper(const RoutingTable6 &table);

    Ip6MappingResult map(const Ip6DesignSpec &spec) const;

    const RoutingTable6 &table() const { return *table_; }

  private:
    const RoutingTable6 *table_;
};

} // namespace caram::ip

#endif // CARAM_IP_IP6_CARAM_H_
