#include "ip/prefix6.h"

#include <cstdio>
#include <vector>

#include "common/bitops.h"
#include "common/strings.h"

namespace caram::ip {

namespace {

/** The 16 big-endian bytes of (hi, lo). */
void
toBytes(uint64_t hi, uint64_t lo, unsigned char out[16])
{
    for (unsigned i = 0; i < 8; ++i) {
        out[i] = static_cast<unsigned char>(hi >> (56 - 8 * i));
        out[8 + i] = static_cast<unsigned char>(lo >> (56 - 8 * i));
    }
}

} // namespace

Key
Prefix6::toKey() const
{
    unsigned char bytes[16];
    toBytes(hi, lo, bytes);
    return Key::prefixFromBytes(bytes, length, 128);
}

bool
Prefix6::matchesAddress(uint64_t addr_hi, uint64_t addr_lo) const
{
    if (length == 0)
        return true;
    if (length <= 64) {
        const uint64_t mask = maskBits(length) << (64 - length);
        return ((addr_hi ^ hi) & mask) == 0;
    }
    if (addr_hi != hi)
        return false;
    const unsigned low_len = length - 64;
    const uint64_t mask = maskBits(low_len) << (64 - low_len);
    return ((addr_lo ^ lo) & mask) == 0;
}

void
Prefix6::canonicalize()
{
    if (length == 0) {
        hi = lo = 0;
    } else if (length <= 64) {
        hi &= length == 64 ? ~uint64_t{0}
                           : ~maskBits(64 - length);
        lo = 0;
    } else if (length < 128) {
        lo &= ~maskBits(128 - length);
    }
}

std::string
Prefix6::toString() const
{
    std::string out;
    for (unsigned g = 0; g < 8; ++g) {
        const uint64_t word = g < 4 ? hi : lo;
        const unsigned shift = 48 - 16 * (g % 4);
        out += strprintf("%04x", static_cast<unsigned>(
                                     (word >> shift) & 0xffff));
        if (g != 7)
            out.push_back(':');
    }
    out += strprintf("/%u", length);
    return out;
}

std::optional<Prefix6>
Prefix6::parse(const std::string &text)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos)
        return std::nullopt;
    unsigned len = 0;
    if (std::sscanf(text.c_str() + slash + 1, "%u", &len) != 1 ||
        len > 128)
        return std::nullopt;
    const std::string addr = text.substr(0, slash);

    // Split on ':' keeping an optional single '::' elision.
    std::vector<std::string> head, tail;
    const auto elide = addr.find("::");
    auto split = [](const std::string &s) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        while (start <= s.size()) {
            const auto colon = s.find(':', start);
            if (colon == std::string::npos) {
                if (start < s.size())
                    parts.push_back(s.substr(start));
                break;
            }
            if (colon > start)
                parts.push_back(s.substr(start, colon - start));
            start = colon + 1;
        }
        return parts;
    };
    if (elide != std::string::npos) {
        if (addr.find("::", elide + 1) != std::string::npos)
            return std::nullopt; // two elisions
        head = split(addr.substr(0, elide));
        tail = split(addr.substr(elide + 2));
    } else {
        head = split(addr);
        if (head.size() != 8)
            return std::nullopt;
    }
    if (head.size() + tail.size() > 8)
        return std::nullopt;

    uint16_t groups[8] = {0};
    auto parse_group = [](const std::string &g, uint16_t &out) {
        if (g.empty() || g.size() > 4)
            return false;
        unsigned v = 0;
        for (char c : g) {
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        out = static_cast<uint16_t>(v);
        return true;
    };
    for (std::size_t i = 0; i < head.size(); ++i) {
        if (!parse_group(head[i], groups[i]))
            return std::nullopt;
    }
    for (std::size_t i = 0; i < tail.size(); ++i) {
        if (!parse_group(tail[i], groups[8 - tail.size() + i]))
            return std::nullopt;
    }

    Prefix6 p;
    for (unsigned g = 0; g < 4; ++g)
        p.hi |= static_cast<uint64_t>(groups[g]) << (48 - 16 * g);
    for (unsigned g = 0; g < 4; ++g)
        p.lo |= static_cast<uint64_t>(groups[4 + g]) << (48 - 16 * g);
    p.length = static_cast<uint8_t>(len);
    p.canonicalize();
    return p;
}

} // namespace caram::ip
