#ifndef CARAM_IP_PREFIX6_H_
#define CARAM_IP_PREFIX6_H_

/**
 * @file
 * IPv6 prefixes.  The paper motivates them directly: "The size of a
 * routing table will even quadruple as we adopt IPv6" (section 4.1).
 * A prefix is held as a canonical 128-bit address (host bits zero) and
 * a length; the CA-RAM key is a 128-bit ternary key (stored N = 256).
 */

#include <cstdint>
#include <optional>
#include <string>

#include "common/key.h"

namespace caram::ip {

/** One IPv6 forwarding-table entry. */
struct Prefix6
{
    uint64_t hi = 0;      ///< address bits 0..63 (big-endian order)
    uint64_t lo = 0;      ///< address bits 64..127
    uint8_t length = 0;   ///< prefix length, 0..128
    uint32_t nextHop = 0;

    /** Ternary 128-bit key: top @c length bits specified, rest X. */
    Key toKey() const;

    /** True when the address (hi/lo pair) falls under this prefix. */
    bool matchesAddress(uint64_t addr_hi, uint64_t addr_lo) const;

    /** Identity ignores the next hop. */
    bool
    samePrefix(const Prefix6 &other) const
    {
        return hi == other.hi && lo == other.lo && length == other.length;
    }

    /** Zero the bits below the prefix length. */
    void canonicalize();

    /** Full-form "xxxx:xxxx:...:xxxx/len" (no :: compression). */
    std::string toString() const;

    /**
     * Parse "group:group:...::/len"; supports one "::" elision and
     * 1-4 hex digits per group.  nullopt on malformed input.
     */
    static std::optional<Prefix6> parse(const std::string &text);
};

} // namespace caram::ip

#endif // CARAM_IP_PREFIX6_H_
