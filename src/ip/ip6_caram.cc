#include "ip/ip6_caram.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "hash/bit_select.h"

namespace caram::ip {

Ip6CaRamMapper::Ip6CaRamMapper(const RoutingTable6 &table)
    : table_(&table)
{
}

Ip6MappingResult
Ip6CaRamMapper::map(const Ip6DesignSpec &spec) const
{
    core::SliceConfig shape;
    shape.indexBits = spec.indexBitsPerSlice;
    shape.logicalKeyBits = 128;
    shape.ternary = true;
    shape.slotsPerBucket = spec.slotsPerSlice;
    shape.dataBits = spec.dataBits;
    shape.probe = core::ProbePolicy::Linear;
    shape.lpm = true;

    core::DatabaseConfig db_cfg;
    db_cfg.name = "ip6-" + spec.label;
    db_cfg.sliceShape = shape;
    db_cfg.physicalSlices = spec.slices;
    db_cfg.arrangement = spec.arrangement;
    db_cfg.indexFactory = [](const core::SliceConfig &eff)
        -> std::unique_ptr<hash::IndexGenerator> {
        // The last R bits of the first 32 address bits (the /32
        // provider-allocation boundary plays IPv4's /16 role).
        if (eff.indexBits > 32)
            fatal("IPv6 hash window limited to the first 32 bits");
        std::vector<unsigned> positions;
        for (unsigned p = 32 - eff.indexBits; p < 32; ++p)
            positions.push_back(p);
        return std::make_unique<hash::BitSelectIndex>(
            128, std::move(positions));
    };

    Ip6MappingResult out;
    out.label = spec.label;
    {
        const uint64_t shape_rows = shape.rows();
        const uint64_t eff_rows =
            db_cfg.effectiveConfig().rows();
        db_cfg.sliceShape.maxProbeDistance = static_cast<unsigned>(
            std::min<uint64_t>(shape_rows - 1, eff_rows - 1));
    }
    out.effective = db_cfg.effectiveConfig();
    out.db = std::make_unique<core::Database>(db_cfg);
    out.prefixes = table_->size();

    // Length-descending build order for LPM.
    const auto &prefixes = table_->prefixes();
    std::vector<std::size_t> order(prefixes.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return prefixes[a].length > prefixes[b].length;
                     });

    double cost = 0.0;
    uint64_t ok = 0;
    for (std::size_t idx : order) {
        const Prefix6 &p = prefixes[idx];
        const auto det = out.db->insertDetailed(
            core::Record{p.toKey(), p.nextHop}, p.length);
        if (!det.ok) {
            ++out.failedPrefixes;
            continue;
        }
        ++ok;
        out.duplicates += det.copies + det.tcamCopies - 1;
        cost += det.meanAccessCost;
    }

    out.stats = out.db->loadStats();
    out.loadFactorNominal =
        static_cast<double>(out.prefixes) /
        static_cast<double>(out.effective.capacity());
    out.overflowingBucketFraction = out.stats.overflowingBucketFraction();
    out.spilledRecordFraction = out.stats.spilledRecordFraction();
    out.amalUniform =
        ok == 0 ? 0.0 : cost / static_cast<double>(ok);
    return out;
}

} // namespace caram::ip
