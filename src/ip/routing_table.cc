#include "ip/routing_table.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

namespace caram::ip {

bool
RoutingTable::add(const Prefix &prefix)
{
    if (!ids_.insert(prefix.id()).second)
        return false;
    prefixes_.push_back(prefix);
    return true;
}

bool
RoutingTable::contains(const Prefix &prefix) const
{
    return ids_.find(prefix.id()) != ids_.end();
}

Histogram
RoutingTable::lengthHistogram() const
{
    Histogram h;
    for (const Prefix &p : prefixes_)
        h.add(p.length);
    return h;
}

double
RoutingTable::fractionAtLeast(unsigned len) const
{
    if (prefixes_.empty())
        return 0.0;
    std::size_t n = 0;
    for (const Prefix &p : prefixes_)
        n += p.length >= len ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(prefixes_.size());
}

unsigned
RoutingTable::minLength() const
{
    unsigned best = 0;
    bool first = true;
    for (const Prefix &p : prefixes_) {
        if (first || p.length < best) {
            best = p.length;
            first = false;
        }
    }
    return best;
}

void
RoutingTable::save(std::ostream &os) const
{
    for (const Prefix &p : prefixes_)
        os << p.toString() << " " << p.nextHop << "\n";
}

std::size_t
RoutingTable::load(std::istream &is)
{
    std::size_t loaded = 0;
    std::string token;
    while (is >> token) {
        uint64_t hop = 0;
        if (!(is >> hop))
            break;
        auto p = Prefix::parse(token);
        if (!p)
            continue;
        p->nextHop = static_cast<uint32_t>(hop);
        if (add(*p))
            ++loaded;
    }
    return loaded;
}

} // namespace caram::ip
