#ifndef CARAM_CORE_LOAD_STATS_H_
#define CARAM_CORE_LOAD_STATS_H_

/**
 * @file
 * Placement statistics of a CA-RAM database: the quantities the paper's
 * Tables 2 and 3 report -- load factor alpha, the fraction of
 * overflowing buckets, the fraction of spilled records, and AMAL (the
 * average number of memory accesses per lookup).
 */

#include <cstdint>

#include "common/stats.h"

namespace caram::core {

/** Aggregated placement statistics for one slice/database. */
struct LoadStats
{
    uint64_t buckets = 0;        ///< M
    unsigned slotsPerBucket = 0; ///< S
    uint64_t records = 0;        ///< placed records (incl. duplicates)
    uint64_t spilledRecords = 0; ///< records placed outside their home
    uint64_t overflowingBuckets = 0; ///< buckets whose demand exceeds S

    /** Demand per home bucket (how many records hash there). */
    Histogram homeDemand;
    /** Probe distance of placed records (0 = home bucket). */
    Histogram distance;

    /** alpha = N / (M * S). */
    double loadFactor() const;

    /** Fraction of buckets that overflowed. */
    double overflowingBucketFraction() const;

    /** Fraction of records spilled to other buckets. */
    double spilledRecordFraction() const;

    /**
     * AMAL under a uniform access pattern: each placed record equally
     * likely, lookup cost = probe distance + 1.
     */
    double amalUniform() const;

    /**
     * Excess AMAL over the 1.0 floor of a perfectly packed table --
     * the quantity online maintenance can actually reclaim (a fresh
     * rebuild of a fitting table drives it to ~0).  The maintenance
     * engine's recovery gates compare excess, not raw AMAL, so a
     * nearly-ideal table does not mask a 2x chain-length regression.
     */
    double
    excessAmal() const
    {
        const double amal = amalUniform();
        return amal > 1.0 ? amal - 1.0 : 0.0;
    }
};

} // namespace caram::core

#endif // CARAM_CORE_LOAD_STATS_H_
