#ifndef CARAM_CORE_SUBSYSTEM_H_
#define CARAM_CORE_SUBSYSTEM_H_

/**
 * @file
 * The CA-RAM memory subsystem of paper Figure 5: multiple databases
 * (slice groups) behind an input controller with request and result
 * queues, addressed through virtual ports, plus the RAM-mode view of
 * the aggregate storage.
 *
 * "Requests and results are both queued for achieving maximum bandwidth
 * without interruptions. ... each port address can be tied to a 'virtual
 * port' mapped to a specific database."
 */

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/database.h"
#include "sim/queue.h"

namespace caram::core {

/** CAM-mode operation carried by a request (paper section 3.2: "There
 *  are three main operations defined for the CAM mode: (1) search,
 *  (2) insert, and (3) delete").  Rebuild is a maintenance operation
 *  on top of those: repack a database in place (Database::rebuild())
 *  through the same queued protocol, so an engine worker that owns the
 *  database can run it between batches. */
enum class PortOp
{
    Search,
    Insert,
    Erase,
    Rebuild,
    /** Engine-internal: one background maintenance step (migrate /
     *  trim / adopt; see engine::MaintenanceEngine).  Rides the port
     *  request plumbing so the writer lane stays the single mutation
     *  authority, but produces no PortResponse and never reaches
     *  executePortRequest(), which panics on it. */
    Maintenance,
};

/** A queued CAM-mode request submitted through a virtual port. */
struct PortRequest
{
    unsigned port = 0;  ///< virtual port = database selector
    PortOp op = PortOp::Search;
    Key key;            ///< search/insert/delete key
    uint64_t data = 0;  ///< record data (Insert)
    int priority = 0;   ///< multi-match priority (Insert)
    uint64_t tag = 0;   ///< caller-chosen identifier echoed in the result
};

/** A completed operation pulled from the result queue. */
struct PortResponse
{
    uint64_t tag = 0;
    unsigned port = 0;  ///< virtual port the request was submitted to
    PortOp op = PortOp::Search;
    /**
     * False when the request could not be executed at all -- e.g. the
     * target database was in PowerState::Retention.  A failed request
     * still produces a response (hit == false) so that one retained
     * database cannot silently swallow, or abort, a drain.
     */
    bool ok = true;
    /** Search: a record matched.  Insert: placed.  Erase: removed. */
    bool hit = false;
    /** Search: matched data.  Erase: copies removed. */
    uint64_t data = 0;
    Key key;                     ///< matched stored key (Search)
    unsigned bucketsAccessed = 0;
};

/**
 * Execute one CAM-mode request against @p db, producing exactly the
 * response the input controller would enqueue.  Requests against an
 * inaccessible database (data-retention mode) come back with
 * ok == false instead of throwing, so drain loops survive.  Shared by
 * CaRamSubsystem::process() and the parallel search engine so both
 * produce bit-identical result streams.
 */
PortResponse executePortRequest(Database &db, const PortRequest &req);

/**
 * executePortRequest() variant for the concurrent-mutation engine: when
 * @p domain is non-null and the request is a Rebuild a Probing database
 * can serve concurrently (canRebuild()), the rebuild routes through
 * Database::rebuildSwap() -- readers keep searching the old slice while
 * the fresh one is packed, and the old slice is retired into @p domain.
 * Every other combination behaves exactly like the two-argument form,
 * and the response is bit-identical either way (rebuildSwap repacks the
 * same record stream into the same table).
 */
PortResponse executePortRequest(Database &db, const PortRequest &req,
                                sim::EpochDomain *domain);

/** The full CA-RAM memory subsystem. */
class CaRamSubsystem
{
  public:
    /**
     * @param request_queue_capacity depth of each request queue
     * @param result_queue_capacity  depth of the result queue
     * @param split_port_queues      give every virtual port its own
     *        request queue ("request and result queues can be
     *        (physically) split into multiple queues for even higher
     *        bandwidth", section 3.2); one port's backpressure then
     *        cannot block another's
     */
    explicit CaRamSubsystem(std::size_t request_queue_capacity = 64,
                            std::size_t result_queue_capacity = 64,
                            bool split_port_queues = false);

    /**
     * Create a database; its virtual port number is returned by
     * portOf().  The configuration is kept in the subsystem's
     * configuration storage.
     */
    Database &addDatabase(DatabaseConfig config);

    std::size_t databaseCount() const { return databases.size(); }
    Database &database(unsigned port);
    Database &database(const std::string &name);
    unsigned portOf(const std::string &name) const;

    /// @name CAM-mode request/result protocol
    /// @{
    /**
     * Submit a lookup through a virtual port; returns false when the
     * request queue is full (backpressure).
     */
    bool submit(unsigned port, const Key &key, uint64_t tag);

    /** Submit a CAM-mode insert ("Insert and delete operations are
     *  used to construct and maintain a database"). */
    bool submitInsert(unsigned port, const Record &record, int priority,
                      uint64_t tag);

    /** Submit a CAM-mode delete. */
    bool submitErase(unsigned port, const Key &key, uint64_t tag);

    /** Submit a database repack (Database::rebuild()).  The response
     *  reports ok == false when the database cannot be rebuilt, hit
     *  when every record was re-placed, and the logical record count
     *  in data. */
    bool submitRebuild(unsigned port, uint64_t tag);

    /**
     * Submit a batch of pre-built requests, stopping at the first one
     * rejected by a full queue so that per-port FIFO order is preserved.
     * Returns the number accepted (a prefix of @p requests).
     */
    std::size_t submitBatch(std::span<const PortRequest> requests);

    /**
     * Input controller: dispatch up to @p max_requests queued requests
     * to their databases, pushing results into the result queue.  Stops
     * early when the result queue fills.  Returns requests processed.
     */
    std::size_t process(std::size_t max_requests = SIZE_MAX);

    /** Pop the next completed result, if any. */
    std::optional<PortResponse> fetchResult();

    /** The request queue serving @p port (the shared queue when the
     *  subsystem was not built with split queues).  The port must name
     *  an existing queue: in shared-queue mode only ports that route to
     *  a database (or port 0, the queue itself) are accepted. */
    const sim::BoundedQueue<PortRequest> &requestQueue(
        unsigned port = 0) const;
    const sim::BoundedQueue<PortResponse> &resultQueue() const
    {
        return results;
    }
    bool splitPortQueues() const { return splitQueues; }
    /// @}

    /// @name RAM mode (section 3.2)
    /// @{
    /**
     * The aggregate linear word address space: databases are laid out
     * consecutively in port order.
     */
    uint64_t ramWords() const;
    uint64_t ramLoad(uint64_t word_addr) const;
    void ramStore(uint64_t word_addr, uint64_t value);
    /// @}

    /// @name Aggregate cost model
    /// @{
    double totalAreaUm2() const;
    /// @}

    /** Dump per-database and queue statistics (gem5-style stats). */
    void printStats(std::ostream &os) const;

  private:
    /** Map a global RAM-mode address to (database, local address). */
    std::pair<const Database *, uint64_t> ramRoute(uint64_t word_addr) const;
    std::pair<Database *, uint64_t> ramRoute(uint64_t word_addr);

    /** The request queue a port submits into. */
    sim::BoundedQueue<PortRequest> &queueFor(unsigned port);

    std::vector<std::unique_ptr<Database>> databases;
    std::vector<sim::BoundedQueue<PortRequest>> requestQueues;
    sim::BoundedQueue<PortResponse> results;
    std::size_t requestCapacity;
    bool splitQueues;
    std::size_t nextQueue = 0; ///< round-robin cursor for process()
};

} // namespace caram::core

#endif // CARAM_CORE_SUBSYSTEM_H_
