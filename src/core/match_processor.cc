#include "core/match_processor.h"

#include <algorithm>
#include <bit>

#include "cam/priority_encoder.h"
#include "common/bitops.h"
#include "common/logging.h"

namespace caram::core {

namespace {

/** 64 bits of a row starting at @p bitpos (the guard word / in-row
 *  layout makes the one-past read safe; callers mask excess bits). */
inline uint64_t
gather64(const uint64_t *row, uint64_t bitpos)
{
    const uint64_t w = bitpos / 64;
    const unsigned off = static_cast<unsigned>(bitpos % 64);
    if (off == 0)
        return row[w];
    return (row[w] >> off) | (row[w + 1] << (64 - off));
}

} // namespace

MatchProcessor::MatchProcessor(const SliceConfig &config) : cfg(&config)
{
    const unsigned kb = cfg->logicalKeyBits;
    const unsigned slots = cfg->slotsPerBucket;
    keyWords = static_cast<unsigned>(ceilDiv(kb, 64));
    // Padded so a SIMD group load starting at any real slot stays inside
    // the table; the pad lanes are excluded via the group's validMask
    // (base 0 keeps even an unconditional pad-lane gather inside the row).
    slotBitBase.assign(slots + kernels::kMaxLanes, 0);
    validWord.resize(slots);
    validShift.resize(slots);
    for (unsigned s = 0; s < slots; ++s) {
        const uint64_t base = static_cast<uint64_t>(s) * cfg->slotBits();
        slotBitBase[s] = base;
        const uint64_t vb = base + cfg->storedKeyBits() + cfg->dataBits;
        validWord[s] = static_cast<uint32_t>(vb / 64);
        validShift[s] = static_cast<uint8_t>(vb % 64);
    }
    widthMask.assign(keyWords, ~uint64_t{0});
    if (kb % 64 != 0)
        widthMask[keyWords - 1] = maskBits(kb % 64);

    kernel_ = simd::activeMatchKernel();
    groupFn_ = kernels::groupMatchFn(kernel_);
    multiKeyFn_ = kernels::multiKeyMatchFn(kernel_);
    lanes_ = kernels::kernelLanes(kernel_);
}

void
MatchProcessor::pack(const Key &search, PackedKey &out) const
{
    if (search.bits() != cfg->logicalKeyBits)
        fatal("search key width does not match the slice configuration");
    out.key = search;
    // Padded to Key::kWords so the SIMD kernels can load the buffers as
    // one full vector; the zero care padding masks the junk a row
    // window carries past the key width.
    out.value.assign(Key::kWords, 0);
    out.careMask.assign(Key::kWords, 0);
    // Key words are normalized (care and value zero beyond the width),
    // so the careMask doubles as the width mask for gathered row words.
    const auto vw = search.valueWords();
    const auto cw = search.careWords();
    for (unsigned w = 0; w < keyWords; ++w) {
        out.value[w] = vw[w];
        out.careMask[w] = cw[w];
    }
}

bool
MatchProcessor::slotMatchesRaw(const uint64_t *row, unsigned s,
                               const PackedKey &packed) const
{
    const uint64_t *pv = packed.value.data();
    const uint64_t *pc = packed.careMask.data();
    const uint64_t base = slotBitBase[s];
    const unsigned kb = cfg->logicalKeyBits;
    // Early exit per word: a non-matching slot almost always differs
    // already in its first word, so the remaining words (and the
    // stored-care gathers) are skipped for the typical slot.
    if (!cfg->ternary) {
        for (unsigned w = 0; w < keyWords; ++w) {
            if ((gather64(row, base + 64u * w) ^ pv[w]) & pc[w])
                return false;
        }
    } else {
        for (unsigned w = 0; w < keyWords; ++w) {
            // Stored care sits exactly kb bits above the value field.
            if ((gather64(row, base + 64u * w) ^ pv[w]) & pc[w] &
                gather64(row, base + kb + 64u * w))
                return false;
        }
    }
    return true;
}

uint32_t
MatchProcessor::groupValidMask(const uint64_t *row, unsigned start,
                               unsigned width) const
{
    const unsigned end =
        std::min(start + width, cfg->slotsPerBucket);
    uint32_t mask = 0;
    for (unsigned s = start; s < end; ++s) {
        mask |= static_cast<uint32_t>(slotValidRaw(row, s))
                << (s - start);
    }
    return mask;
}

uint32_t
MatchProcessor::groupMatchMask(const uint64_t *row, unsigned start,
                               const PackedKey &packed) const
{
    const uint32_t valid = groupValidMask(row, start, lanes_);
    if (!valid)
        return 0;
    kernels::GroupArgs args;
    args.row = row;
    args.value = packed.value.data();
    args.care = packed.careMask.data();
    args.slotBitBase = slotBitBase.data() + start;
    args.validMask = valid;
    args.keyWords = keyWords;
    args.keyBits = cfg->logicalKeyBits;
    args.ternary = cfg->ternary;
    return groupFn_(args);
}

void
MatchProcessor::packGroup(const PackedKey *const *keys, unsigned n,
                          PackedKeyGroup &out) const
{
    if (n > kernels::kMaxGroupKeys)
        fatal("packGroup: group exceeds kMaxGroupKeys");
    // Only the first keyWords transposed words are ever read by the
    // kernels, so only those need their absent lanes zeroed -- this
    // runs once per group per chain walk, so avoid touching the full
    // kWords-sized arrays.
    for (unsigned w = 0; w < keyWords; ++w) {
        uint64_t *vrow = out.valueT.data() + w * kernels::kMaxGroupKeys;
        uint64_t *crow = out.careT.data() + w * kernels::kMaxGroupKeys;
        for (unsigned k = 0; k < n; ++k) {
            vrow[k] = keys[k]->value[w];
            crow[k] = keys[k]->careMask[w];
        }
        for (unsigned k = n; k < kernels::kMaxGroupKeys; ++k) {
            vrow[k] = 0;
            crow[k] = 0;
        }
    }
    for (unsigned k = 0; k < n; ++k)
        out.keys[k] = keys[k];
    for (unsigned k = n; k < kernels::kMaxGroupKeys; ++k)
        out.keys[k] = nullptr;
    out.size = n;
    out.keyMask = (n >= 32) ? ~0u : ((1u << n) - 1);
}

void
MatchProcessor::multiKeyMatchMask(const uint64_t *row, unsigned start,
                                  const PackedKeyGroup &group,
                                  uint32_t keyMask,
                                  uint32_t out[kernels::kMaxLanes]) const
{
    // The multi-key kernels scalar-loop the slot dimension, so one call
    // covers a full kMaxLanes-slot window regardless of vector width.
    const uint32_t valid = groupValidMask(row, start, kernels::kMaxLanes);
    if (!valid || !keyMask) {
        std::fill_n(out, kernels::kMaxLanes, 0u);
        return;
    }
    kernels::MultiKeyArgs args;
    args.row = row;
    args.slotBitBase = slotBitBase.data() + start;
    args.validMask = valid;
    args.keyValueT = group.valueT.data();
    args.keyCareT = group.careT.data();
    args.keyMask = keyMask;
    args.keyWords = keyWords;
    args.keyBits = cfg->logicalKeyBits;
    args.ternary = cfg->ternary;
    multiKeyFn_(args, out);
}

void
MatchProcessor::searchBucketKeys(const BucketView &bucket,
                                 const PackedKeyGroup &group,
                                 uint32_t aliveMask, BucketMatch *out) const
{
    aliveMask &= group.keyMask;
    if (!aliveMask)
        return;
    if (kernel_ == simd::MatchKernel::Scalar) {
        // The scalar kernel gains nothing from key batching (the row
        // words would be re-gathered per key anyway); reuse the
        // single-key path, which is the semantic definition.
        for (uint32_t m = aliveMask; m; m &= m - 1) {
            const unsigned k =
                static_cast<unsigned>(std::countr_zero(m));
            out[k] = searchBucketPacked(bucket, *group.keys[k]);
        }
        return;
    }
    const uint64_t *row = bucket.rowData();
    int first[kernels::kMaxGroupKeys];
    bool multiple[kernels::kMaxGroupKeys];
    for (unsigned k = 0; k < kernels::kMaxGroupKeys; ++k) {
        first[k] = -1;
        multiple[k] = false;
    }
    // Keys drop out of `pending` once their verdict is final (a second
    // match seen), which shrinks the kernel's key set as the row scan
    // proceeds -- mirroring the serial path's early break.
    uint32_t pending = aliveMask;
    uint32_t masks[kernels::kMaxLanes];
    for (unsigned g = 0; g < cfg->slotsPerBucket && pending;
         g += kernels::kMaxLanes) {
        multiKeyMatchMask(row, g, group, pending, masks);
        const unsigned end =
            std::min(kernels::kMaxLanes, cfg->slotsPerBucket - g);
        for (unsigned l = 0; l < end; ++l) {
            for (uint32_t km = masks[l] & pending; km; km &= km - 1) {
                const unsigned k =
                    static_cast<unsigned>(std::countr_zero(km));
                if (first[k] < 0) {
                    first[k] = static_cast<int>(g + l);
                } else {
                    multiple[k] = true;
                    pending &= ~(1u << k);
                }
            }
        }
    }
    for (uint32_t m = aliveMask; m; m &= m - 1) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(m));
        out[k] = first[k] < 0
                     ? BucketMatch{}
                     : extract(bucket, static_cast<unsigned>(first[k]),
                               multiple[k]);
    }
}

void
MatchProcessor::searchBucketBestKeys(const BucketView &bucket,
                                     const PackedKeyGroup &group,
                                     uint32_t aliveMask,
                                     BucketMatch *out) const
{
    aliveMask &= group.keyMask;
    if (!aliveMask)
        return;
    if (kernel_ == simd::MatchKernel::Scalar) {
        for (uint32_t m = aliveMask; m; m &= m - 1) {
            const unsigned k =
                static_cast<unsigned>(std::countr_zero(m));
            out[k] = searchBucketBestPacked(bucket, *group.keys[k]);
        }
        return;
    }
    const uint64_t *row = bucket.rowData();
    int best[kernels::kMaxGroupKeys];
    unsigned bestPop[kernels::kMaxGroupKeys];
    unsigned matches[kernels::kMaxGroupKeys];
    for (unsigned k = 0; k < kernels::kMaxGroupKeys; ++k) {
        best[k] = -1;
        bestPop[k] = 0;
        matches[k] = 0;
    }
    uint32_t masks[kernels::kMaxLanes];
    for (unsigned g = 0; g < cfg->slotsPerBucket;
         g += kernels::kMaxLanes) {
        multiKeyMatchMask(row, g, group, aliveMask, masks);
        const unsigned end =
            std::min(kernels::kMaxLanes, cfg->slotsPerBucket - g);
        for (unsigned l = 0; l < end; ++l) {
            uint32_t km = masks[l];
            if (!km)
                continue;
            const unsigned s = g + l;
            // The ranking popcount depends only on the slot's stored
            // care, so it is shared across every key matching here.
            const unsigned pop = storedCarePopcount(row, s);
            for (; km; km &= km - 1) {
                const unsigned k =
                    static_cast<unsigned>(std::countr_zero(km));
                ++matches[k];
                if (best[k] < 0 || pop > bestPop[k]) {
                    best[k] = static_cast<int>(s);
                    bestPop[k] = pop;
                }
            }
        }
    }
    for (uint32_t m = aliveMask; m; m &= m - 1) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(m));
        out[k] = best[k] < 0
                     ? BucketMatch{}
                     : extract(bucket, static_cast<unsigned>(best[k]),
                               matches[k] > 1);
    }
}

unsigned
MatchProcessor::storedCarePopcount(const uint64_t *row, unsigned s) const
{
    const unsigned kb = cfg->logicalKeyBits;
    if (!cfg->ternary)
        return kb;
    const uint64_t care_base = slotBitBase[s] + kb;
    unsigned pop = 0;
    for (unsigned w = 0; w < keyWords; ++w) {
        pop += static_cast<unsigned>(std::popcount(
            gather64(row, care_base + 64u * w) & widthMask[w]));
    }
    return pop;
}

BucketMatch
MatchProcessor::searchBucketPacked(const BucketView &bucket,
                                   const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    int first = -1;
    bool multiple = false;
    if (kernel_ == simd::MatchKernel::Scalar) {
        for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
            if (!slotValidRaw(row, s) || !slotMatchesRaw(row, s, packed))
                continue;
            if (first < 0) {
                first = static_cast<int>(s);
            } else {
                multiple = true;
                break;
            }
        }
    } else {
        for (unsigned g = 0; g < cfg->slotsPerBucket && !multiple;
             g += lanes_) {
            uint32_t mask = groupMatchMask(row, g, packed);
            if (!mask)
                continue;
            if (first < 0) {
                first = static_cast<int>(
                    g + static_cast<unsigned>(std::countr_zero(mask)));
                mask &= mask - 1; // a second lane here = multiple
            }
            multiple = mask != 0;
        }
    }
    if (first < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(first), multiple);
}

BucketMatch
MatchProcessor::searchBucketBestPacked(const BucketView &bucket,
                                       const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    int best = -1;
    unsigned best_pop = 0;
    unsigned matches = 0;
    if (kernel_ == simd::MatchKernel::Scalar) {
        for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
            if (!slotValidRaw(row, s) || !slotMatchesRaw(row, s, packed))
                continue;
            ++matches;
            const unsigned pop = storedCarePopcount(row, s);
            if (best < 0 || pop > best_pop) {
                best = static_cast<int>(s);
                best_pop = pop;
            }
        }
    } else {
        for (unsigned g = 0; g < cfg->slotsPerBucket; g += lanes_) {
            for (uint32_t mask = groupMatchMask(row, g, packed); mask;
                 mask &= mask - 1) {
                const unsigned s =
                    g + static_cast<unsigned>(std::countr_zero(mask));
                ++matches;
                const unsigned pop = storedCarePopcount(row, s);
                if (best < 0 || pop > best_pop) {
                    best = static_cast<int>(s);
                    best_pop = pop;
                }
            }
        }
    }
    if (best < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(best), matches > 1);
}

bool
MatchProcessor::slotMatchesPacked(const BucketView &bucket, unsigned slot,
                                  const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    return slotValidRaw(row, slot) && slotMatchesRaw(row, slot, packed);
}

unsigned
MatchProcessor::countMatches(const BucketView &bucket,
                             const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    unsigned matched = 0;
    if (kernel_ == simd::MatchKernel::Scalar) {
        for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
            if (slotValidRaw(row, s) && slotMatchesRaw(row, s, packed))
                ++matched;
        }
    } else {
        for (unsigned g = 0; g < cfg->slotsPerBucket; g += lanes_) {
            matched += static_cast<unsigned>(
                std::popcount(groupMatchMask(row, g, packed)));
        }
    }
    return matched;
}

std::vector<bool>
MatchProcessor::matchVector(const BucketView &bucket,
                            const Key &search) const
{
    if (search.bits() != cfg->logicalKeyBits)
        fatal("search key width does not match the slice configuration");
    std::vector<bool> mv(bucket.slots(), false);
    for (unsigned i = 0; i < bucket.slots(); ++i) {
        mv[i] = bucket.slotValid(i) && bucket.slotMatchesKey(i, search);
    }
    return mv;
}

BucketMatch
MatchProcessor::extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const
{
    // Decode the winning slot straight from the row words; this runs
    // once per hit, after the match was already decided.
    const uint64_t *row = bucket.rowData();
    const unsigned kb = cfg->logicalKeyBits;
    const uint64_t base = uint64_t{slot} * cfg->slotBits();
    BucketMatch m;
    m.hit = true;
    m.multipleMatch = multiple;
    m.slot = slot;
    if (cfg->dataBits != 0) {
        m.data = gather64(row, base + cfg->storedKeyBits()) &
                 maskBits(cfg->dataBits);
    }
    uint64_t v[Key::kWords];
    uint64_t c[Key::kWords];
    const unsigned words = static_cast<unsigned>(ceilDiv(kb, 64));
    for (unsigned j = 0; j < words; ++j) {
        v[j] = gather64(row, base + 64u * j);
        c[j] = cfg->ternary ? gather64(row, base + kb + 64u * j)
                            : ~uint64_t{0};
    }
    // fromWords normalizes bits beyond the width and value bits outside
    // the care mask, so the gathered excess bits are harmless.
    m.key = Key::fromWords({v, words}, {c, words}, kb);
    return m;
}

BucketMatch
MatchProcessor::searchBucket(const BucketView &bucket,
                             const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    const auto enc = cam::priorityEncode(mv);
    if (!enc.anyMatch)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(enc.index),
                   enc.multipleMatch);
}

BucketMatch
MatchProcessor::searchBucketBest(const BucketView &bucket,
                                 const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    int best = -1;
    unsigned best_pop = 0;
    unsigned matches = 0;
    for (unsigned i = 0; i < mv.size(); ++i) {
        if (!mv[i])
            continue;
        ++matches;
        const unsigned pop = bucket.slotKey(i).carePopcount();
        if (best < 0 || pop > best_pop) {
            best = static_cast<int>(i);
            best_pop = pop;
        }
    }
    if (best < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(best), matches > 1);
}

bool
MatchProcessor::slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config)
{
    (void)config;
    return bucket.slotMatchesKey(slot, search);
}

} // namespace caram::core
