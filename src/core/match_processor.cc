#include "core/match_processor.h"

#include <bit>

#include "cam/priority_encoder.h"
#include "common/bitops.h"
#include "common/logging.h"

namespace caram::core {

namespace {

/** 64 bits of a row starting at @p bitpos (the guard word / in-row
 *  layout makes the one-past read safe; callers mask excess bits). */
inline uint64_t
gather64(const uint64_t *row, uint64_t bitpos)
{
    const uint64_t w = bitpos / 64;
    const unsigned off = static_cast<unsigned>(bitpos % 64);
    if (off == 0)
        return row[w];
    return (row[w] >> off) | (row[w + 1] << (64 - off));
}

} // namespace

MatchProcessor::MatchProcessor(const SliceConfig &config) : cfg(&config)
{
    const unsigned kb = cfg->logicalKeyBits;
    const unsigned slots = cfg->slotsPerBucket;
    keyWords = static_cast<unsigned>(ceilDiv(kb, 64));
    slotBitBase.resize(slots);
    validWord.resize(slots);
    validShift.resize(slots);
    for (unsigned s = 0; s < slots; ++s) {
        const uint64_t base = static_cast<uint64_t>(s) * cfg->slotBits();
        slotBitBase[s] = base;
        const uint64_t vb = base + cfg->storedKeyBits() + cfg->dataBits;
        validWord[s] = static_cast<uint32_t>(vb / 64);
        validShift[s] = static_cast<uint8_t>(vb % 64);
    }
    widthMask.assign(keyWords, ~uint64_t{0});
    if (kb % 64 != 0)
        widthMask[keyWords - 1] = maskBits(kb % 64);
}

void
MatchProcessor::pack(const Key &search, PackedKey &out) const
{
    if (search.bits() != cfg->logicalKeyBits)
        fatal("search key width does not match the slice configuration");
    out.key = search;
    out.value.resize(keyWords);
    out.careMask.resize(keyWords);
    // Key words are normalized (care and value zero beyond the width),
    // so the careMask doubles as the width mask for gathered row words.
    const auto vw = search.valueWords();
    const auto cw = search.careWords();
    for (unsigned w = 0; w < keyWords; ++w) {
        out.value[w] = vw[w];
        out.careMask[w] = cw[w];
    }
}

bool
MatchProcessor::slotMatchesRaw(const uint64_t *row, unsigned s,
                               const PackedKey &packed) const
{
    const uint64_t *pv = packed.value.data();
    const uint64_t *pc = packed.careMask.data();
    const uint64_t base = slotBitBase[s];
    const unsigned kb = cfg->logicalKeyBits;
    // Early exit per word: a non-matching slot almost always differs
    // already in its first word, so the remaining words (and the
    // stored-care gathers) are skipped for the typical slot.
    if (!cfg->ternary) {
        for (unsigned w = 0; w < keyWords; ++w) {
            if ((gather64(row, base + 64u * w) ^ pv[w]) & pc[w])
                return false;
        }
    } else {
        for (unsigned w = 0; w < keyWords; ++w) {
            // Stored care sits exactly kb bits above the value field.
            if ((gather64(row, base + 64u * w) ^ pv[w]) & pc[w] &
                gather64(row, base + kb + 64u * w))
                return false;
        }
    }
    return true;
}

unsigned
MatchProcessor::storedCarePopcount(const uint64_t *row, unsigned s) const
{
    const unsigned kb = cfg->logicalKeyBits;
    if (!cfg->ternary)
        return kb;
    const uint64_t care_base = slotBitBase[s] + kb;
    unsigned pop = 0;
    for (unsigned w = 0; w < keyWords; ++w) {
        pop += static_cast<unsigned>(std::popcount(
            gather64(row, care_base + 64u * w) & widthMask[w]));
    }
    return pop;
}

BucketMatch
MatchProcessor::searchBucketPacked(const BucketView &bucket,
                                   const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    int first = -1;
    bool multiple = false;
    for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
        if (!slotValidRaw(row, s) || !slotMatchesRaw(row, s, packed))
            continue;
        if (first < 0) {
            first = static_cast<int>(s);
        } else {
            multiple = true;
            break;
        }
    }
    if (first < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(first), multiple);
}

BucketMatch
MatchProcessor::searchBucketBestPacked(const BucketView &bucket,
                                       const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    int best = -1;
    unsigned best_pop = 0;
    unsigned matches = 0;
    for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
        if (!slotValidRaw(row, s) || !slotMatchesRaw(row, s, packed))
            continue;
        ++matches;
        const unsigned pop = storedCarePopcount(row, s);
        if (best < 0 || pop > best_pop) {
            best = static_cast<int>(s);
            best_pop = pop;
        }
    }
    if (best < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(best), matches > 1);
}

bool
MatchProcessor::slotMatchesPacked(const BucketView &bucket, unsigned slot,
                                  const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    return slotValidRaw(row, slot) && slotMatchesRaw(row, slot, packed);
}

unsigned
MatchProcessor::countMatches(const BucketView &bucket,
                             const PackedKey &packed) const
{
    const uint64_t *row = bucket.rowData();
    unsigned matched = 0;
    for (unsigned s = 0; s < cfg->slotsPerBucket; ++s) {
        if (slotValidRaw(row, s) && slotMatchesRaw(row, s, packed))
            ++matched;
    }
    return matched;
}

std::vector<bool>
MatchProcessor::matchVector(const BucketView &bucket,
                            const Key &search) const
{
    if (search.bits() != cfg->logicalKeyBits)
        fatal("search key width does not match the slice configuration");
    std::vector<bool> mv(bucket.slots(), false);
    for (unsigned i = 0; i < bucket.slots(); ++i) {
        mv[i] = bucket.slotValid(i) && bucket.slotMatchesKey(i, search);
    }
    return mv;
}

BucketMatch
MatchProcessor::extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const
{
    // Decode the winning slot straight from the row words; this runs
    // once per hit, after the match was already decided.
    const uint64_t *row = bucket.rowData();
    const unsigned kb = cfg->logicalKeyBits;
    const uint64_t base = uint64_t{slot} * cfg->slotBits();
    BucketMatch m;
    m.hit = true;
    m.multipleMatch = multiple;
    m.slot = slot;
    if (cfg->dataBits != 0) {
        m.data = gather64(row, base + cfg->storedKeyBits()) &
                 maskBits(cfg->dataBits);
    }
    uint64_t v[Key::kWords];
    uint64_t c[Key::kWords];
    const unsigned words = static_cast<unsigned>(ceilDiv(kb, 64));
    for (unsigned j = 0; j < words; ++j) {
        v[j] = gather64(row, base + 64u * j);
        c[j] = cfg->ternary ? gather64(row, base + kb + 64u * j)
                            : ~uint64_t{0};
    }
    // fromWords normalizes bits beyond the width and value bits outside
    // the care mask, so the gathered excess bits are harmless.
    m.key = Key::fromWords({v, words}, {c, words}, kb);
    return m;
}

BucketMatch
MatchProcessor::searchBucket(const BucketView &bucket,
                             const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    const auto enc = cam::priorityEncode(mv);
    if (!enc.anyMatch)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(enc.index),
                   enc.multipleMatch);
}

BucketMatch
MatchProcessor::searchBucketBest(const BucketView &bucket,
                                 const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    int best = -1;
    unsigned best_pop = 0;
    unsigned matches = 0;
    for (unsigned i = 0; i < mv.size(); ++i) {
        if (!mv[i])
            continue;
        ++matches;
        const unsigned pop = bucket.slotKey(i).carePopcount();
        if (best < 0 || pop > best_pop) {
            best = static_cast<int>(i);
            best_pop = pop;
        }
    }
    if (best < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(best), matches > 1);
}

bool
MatchProcessor::slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config)
{
    (void)config;
    return bucket.slotMatchesKey(slot, search);
}

} // namespace caram::core
