#include "core/match_processor.h"

#include "cam/priority_encoder.h"
#include "common/logging.h"

namespace caram::core {

MatchProcessor::MatchProcessor(const SliceConfig &config) : cfg(&config)
{
}

std::vector<bool>
MatchProcessor::matchVector(const BucketView &bucket,
                            const Key &search) const
{
    if (search.bits() != cfg->logicalKeyBits)
        fatal("search key width does not match the slice configuration");
    std::vector<bool> mv(bucket.slots(), false);
    for (unsigned i = 0; i < bucket.slots(); ++i) {
        mv[i] = bucket.slotValid(i) && bucket.slotMatchesKey(i, search);
    }
    return mv;
}

BucketMatch
MatchProcessor::extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const
{
    BucketMatch m;
    m.hit = true;
    m.multipleMatch = multiple;
    m.slot = slot;
    m.data = bucket.slotData(slot);
    m.key = bucket.slotKey(slot);
    return m;
}

BucketMatch
MatchProcessor::searchBucket(const BucketView &bucket,
                             const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    const auto enc = cam::priorityEncode(mv);
    if (!enc.anyMatch)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(enc.index),
                   enc.multipleMatch);
}

BucketMatch
MatchProcessor::searchBucketBest(const BucketView &bucket,
                                 const Key &search) const
{
    const auto mv = matchVector(bucket, search);
    int best = -1;
    unsigned best_pop = 0;
    unsigned matches = 0;
    for (unsigned i = 0; i < mv.size(); ++i) {
        if (!mv[i])
            continue;
        ++matches;
        const unsigned pop = bucket.slotKey(i).carePopcount();
        if (best < 0 || pop > best_pop) {
            best = static_cast<int>(i);
            best_pop = pop;
        }
    }
    if (best < 0)
        return BucketMatch{};
    return extract(bucket, static_cast<unsigned>(best), matches > 1);
}

bool
MatchProcessor::slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config)
{
    (void)config;
    return bucket.slotMatchesKey(slot, search);
}

} // namespace caram::core
