#ifndef CARAM_CORE_SLICE_H_
#define CARAM_CORE_SLICE_H_

/**
 * @file
 * A CA-RAM slice (paper Figure 3): index generator + dense memory array
 * + match processors, with CAM-mode search/insert/delete, RAM-mode
 * load/store, overflow probing driven by the per-row auxiliary field,
 * and placement statistics.
 *
 * A "slice" here is a *logical* slice: multi-slice horizontal/vertical
 * arrangements (section 3.2) are expressed as one logical slice with the
 * effective R and S (see SliceConfig::arranged), while the physical
 * composition is carried separately for the cost and timing models.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/bucket.h"
#include "core/config.h"
#include "core/load_stats.h"
#include "core/match_processor.h"
#include "core/prefilter.h"
#include "core/record.h"
#include "hash/index_generator.h"
#include "mem/memory_array.h"

namespace caram::core {

/** Aggregate outcome of inserting a (possibly duplicated) record. */
struct InsertSummary
{
    bool ok = false;          ///< every required copy was placed
    unsigned copies = 0;      ///< buckets the record was duplicated into
    unsigned maxDistance = 0; ///< worst probe distance among copies
    std::vector<InsertResult> placements;
};

/** Per-record outcome of a bulk insert -- what insert() would report. */
struct InsertOutcome
{
    bool ok = false;          ///< every required copy was placed
    unsigned copies = 0;      ///< copies placed (incl. overflow entries)
    unsigned maxDistance = 0; ///< worst probe distance among copies
};

/**
 * Row-granular accounting of one insertBatch() call.  The batched
 * pipeline touches each distinct row once per chunk (one fetch to
 * inspect its slots, one writeback carrying every new record and the
 * final aux fields), where record-at-a-time insertion pays the probe
 * chain's fetches plus a slot writeback and a home-row aux writeback
 * per record -- the serial* fields accumulate that reference cost for
 * the same records, so reduction() is the paper's "one row access
 * amortized over many keys" economy measured on the ingest path.
 */
struct InsertBatchSummary
{
    uint64_t accepted = 0;     ///< records fully placed
    uint64_t failed = 0;       ///< records rejected (and rolled back)
    uint64_t rowFetches = 0;   ///< distinct rows read by the batch
    uint64_t rowWritebacks = 0;///< distinct rows written by the batch
    /** Row reads the same records cost record-at-a-time. */
    uint64_t serialRowFetches = 0;
    /** Row writes the same records cost record-at-a-time. */
    uint64_t serialRowWritebacks = 0;
    uint64_t spilledPlacements = 0; ///< placements beyond the home bucket
    uint64_t multiHomeRecords = 0;  ///< ternary duplication (multi-home)
    /** Records a Database-level overflow policy handled one at a time. */
    uint64_t fallbackRecords = 0;

    /** serial row ops / batched row ops (>= 1 when batching pays). */
    double
    rowOpReduction() const
    {
        const uint64_t batched = rowFetches + rowWritebacks;
        const uint64_t serial = serialRowFetches + serialRowWritebacks;
        return batched > 0 ? static_cast<double>(serial) / batched : 0.0;
    }

    void
    merge(const InsertBatchSummary &o)
    {
        accepted += o.accepted;
        failed += o.failed;
        rowFetches += o.rowFetches;
        rowWritebacks += o.rowWritebacks;
        serialRowFetches += o.serialRowFetches;
        serialRowWritebacks += o.serialRowWritebacks;
        spilledPlacements += o.spilledPlacements;
        multiHomeRecords += o.multiHomeRecords;
        fallbackRecords += o.fallbackRecords;
    }
};

/** One CA-RAM slice. */
class CaRamSlice
{
  public:
    /**
     * @param config    validated slice configuration
     * @param index_gen index generator; its indexBits() must equal
     *                  config.indexBits
     */
    CaRamSlice(const SliceConfig &config,
               std::unique_ptr<hash::IndexGenerator> index_gen);

    const SliceConfig &config() const { return cfg; }
    const hash::IndexGenerator &indexGenerator() const { return *idxGen; }

    /** Home bucket of a key (value bits only). */
    uint64_t homeRow(const Key &key) const;

    /** All home buckets of a possibly-ternary key (duplication).
     *  Allocates a fresh vector; the internal search paths use the
     *  per-slice scratch buffer instead (homeRowsInto). */
    std::vector<uint64_t> homeRows(const Key &key) const;

    /// @name CAM-mode operations (section 3.2)
    /// @{
    /**
     * Insert a record, duplicating it into every bucket it can hash to
     * when it has don't-care bits in hash positions.  All-or-nothing: on
     * failure, already-placed copies are rolled back.
     */
    InsertSummary insert(const Record &record);

    /** Insert one copy with an explicit home bucket. */
    InsertResult insertAt(uint64_t home_row, const Record &record);

    /**
     * Undo one placement returned by insertAt()/insert() -- clears
     * exactly that slot and its bookkeeping.  Unlike erase(), this can
     * never disturb a different record with an identical key.
     */
    void removePlacement(const InsertResult &placement);

    /**
     * Look up a search key (which may itself contain don't-care bits,
     * including in hash positions -- then multiple buckets are
     * accessed).  Honors the configuration's probing policy, the home
     * buckets' overflow reach and LPM mode.
     */
    SearchResult search(const Key &search_key);

    /** Remove every stored copy whose stored key equals @p key exactly.
     *  Returns the number of copies removed. */
    unsigned erase(const Key &key);

    /**
     * search() variant that also reports the rows accessed, in order --
     * the timing engine uses this to route accesses to banks.
     */
    SearchResult searchTraced(const Key &search_key,
                              std::vector<uint64_t> &rows_accessed);

    /// @name Shard-scoped search (intra-lookup row fan-out)
    /// @{
    /**
     * Pack @p search_key into @p out, the match processor's step-1
     * template, using *caller-owned* scratch instead of the per-slice
     * packedKey_.  Shard workers pack once per lookup and then hand the
     * same (read-only) packed key to every shard.
     */
    void packSearchKey(const Key &search_key,
                       MatchProcessor::PackedKey &out) const;

    /**
     * Candidate home buckets of @p search_key into @p out -- the
     * caller-scratch variant of homeRows().  @p out is cleared and
     * refilled; it retains capacity across calls, so a pre-sized vector
     * makes this allocation-free.  Order matches homeRowsInto(), which
     * is the order the serial search visits homes in.
     */
    void candidateHomes(const Key &search_key,
                        std::vector<uint64_t> &out) const;

    /**
     * Search a subset of candidate home chains -- the shard entry point
     * of the intra-lookup row fan-out.  Walks @p homes[0..n) through
     * the same chain logic search() uses (probing, overflow reach, LPM
     * best-so-far, first-hit early exit in exact mode) but touches *no*
     * per-slice scratch and *no* search counters: the packed key and
     * the result are caller-owned, so concurrent searchRows() calls on
     * one slice are safe against each other (they only read the memory
     * array) as long as no mutation and no scratch-using entry point
     * (search/searchBatch/erase/...) runs concurrently.
     *
     * The returned bucketsAccessed counts only the rows this shard
     * walked.  Recombine shards with mergeShardResults() and account
     * the merged lookup with noteFanoutSearch() to stay bit-identical
     * to a serial search() over the full home set.
     */
    SearchResult searchRows(const MatchProcessor::PackedKey &packed,
                            const uint64_t *homes, unsigned n);

    /**
     * Merge per-shard bests back into what a serial search() over the
     * concatenated home ranges would have returned.  Shards must be
     * ordered: shard i covers homes strictly before shard i+1's in
     * candidateHomes() order.
     *
     * Exact (non-LPM) mode replays the serial early exit: sum the
     * accesses of leading no-hit shards, then stop at the first hitting
     * shard and take its match (later shards' speculative work is
     * discarded).  LPM mode sums every shard's accesses and keeps the
     * first shard-best with the strictly longest care popcount -- the
     * same first-max-wins rule searchChain() applies per bucket.
     */
    static SearchResult mergeShardResults(const SearchResult *shards,
                                          unsigned n, bool lpm);

    /**
     * Account one fan-out lookup: advances searchesPerformed() by one
     * and searchAccesses() by @p buckets_accessed, exactly as a serial
     * search() reporting that many accesses would.  Call from the
     * coordinating thread after the merge -- the counters share the
     * single-owner rule of the per-slice scratch.
     */
    void noteFanoutSearch(unsigned buckets_accessed);
    /// @}

    /// @name Concurrent search (wait-free readers under mutation)
    /// @{
    /**
     * Caller-owned scratch for searchConcurrent(): the packed search
     * template, the candidate-home list, and a one-row memory array
     * receiving seqlock-validated row snapshots.  The row buffer is
     * (re)sized lazily to the slice's row shape, so one scratch (e.g. a
     * thread_local) serves slices of different configurations.  All
     * members retain capacity, so steady-state concurrent lookups
     * allocate nothing.
     */
    struct ConcurrentSearchScratch
    {
        MatchProcessor::PackedKey packed;
        std::vector<uint64_t> homes;
        std::unique_ptr<mem::MemoryArray> row;
        uint64_t rowBits = 0; ///< shape the row buffer was sized for
    };

    /**
     * Lookup that is safe against concurrent mutations on *other*
     * threads: every row is copied through a per-row sequence-lock
     * validated snapshot (writers bump the row's sequence odd/even
     * around their stores; a reader that observes an odd or changed
     * sequence retries the row), and the match processors then run over
     * the private snapshot.  Wait-free for readers in practice: a retry
     * only happens while a writer is mid-row.
     *
     * Semantics match search() exactly for any interleaving in which
     * each observed row is in a before-or-after-mutation state: a probe
     * chain reads the home row once (reach and slots from the same
     * snapshot), so every row-level observation is consistent.  Unlike
     * search(), this path touches *no* per-slice scratch and *no*
     * search counters (it is const) -- accounting belongs to the
     * caller, as with searchRows().
     */
    SearchResult searchConcurrent(const Key &search_key,
                                  ConcurrentSearchScratch &scratch) const;

    /**
     * Torn-read fault injection: force every @p every-th row snapshot
     * to retry once as if the sequence check had failed (0 disables).
     * Also settable at construction via the CARAM_SEQLOCK_TEAR
     * environment variable; the CI build matrix uses it to prove the
     * retry path preserves results, not just the happy path.
     */
    void setTornReadInjection(unsigned every);

    /** The active injection period (0 = disabled).  Database's
     *  rebuildSwap() copies it onto the replacement slice. */
    unsigned tornReadInjection() const
    {
        return tearEvery_.load(std::memory_order_relaxed);
    }

    /** Row snapshot retries taken (sequence mismatch or injection). */
    uint64_t tornReadRetries() const;
    /// @}

    /// @name Per-row counting pre-filter (guaranteed-miss short-circuit)
    /// @{
    /**
     * Gate *consultation* of the per-row pre-filter (RowPrefilter; see
     * DESIGN.md section 4e).  The filter's counters are maintained by
     * every mutation path regardless of this flag -- a handful of
     * relaxed atomic stores per placed or erased copy -- so flipping
     * consultation on or off never requires a rebuild, and the default
     * (off) leaves every search path's row fetches and access
     * accounting exactly as they were.  With consultation on, rows the
     * filter proves empty of any possible match are skipped before the
     * fetch and before the bucketsAccessed charge; result payloads
     * (hit/data/key, LPM winner) are unchanged.  Engine-owned slices
     * get this set from EngineConfig::prefilter / CARAM_PREFILTER;
     * Database::rebuildSwap() copies it onto the replacement slice.
     */
    void
    setPrefilterEnabled(bool on)
    {
        prefilterEnabled_.store(on, std::memory_order_relaxed);
    }

    bool
    prefilterEnabled() const
    {
        return prefilterEnabled_.load(std::memory_order_relaxed);
    }

    /** Rows consulted / rows skipped by the filter across all search
     *  paths (EngineReport surfaces the per-engine sums). */
    uint64_t
    prefilterProbes() const
    {
        return prefilterProbes_.load(std::memory_order_relaxed);
    }

    uint64_t
    prefilterSkips() const
    {
        return prefilterSkips_.load(std::memory_order_relaxed);
    }

    /**
     * Drop candidate homes whose whole probe chain the filter proves
     * empty (mirrored reach 0 and a failing home-row consult) from
     * @p homes, preserving order -- the fan-out path's shard pruning.
     * Counts one probe and one skip per *pruned* home only; surviving
     * homes are consulted again inside the shard walks, so the counter
     * totals match a serial filtered search of the same key.  No-op
     * while consultation is disabled or the filter is suspended.
     */
    void prefilterPruneHomes(const Key &search_key,
                             std::vector<uint64_t> &homes);

    /** Filter memory footprint, bytes (overhead accounting). */
    uint64_t
    prefilterMemoryBytes() const
    {
        return filter_.memoryBytes();
    }
    /// @}

    /** Keys one searchBatch() chunk groups (scratch sizing). */
    static constexpr unsigned kMaxBatch = 32;

    /**
     * Batched lookup: out[i] receives exactly what search(keys[i])
     * would return (bit-identical results and per-key bucketsAccessed;
     * the search counters advance as if the calls were serial).
     *
     * Keys sharing a home bucket are matched as a *group* against each
     * fetched row -- the multi-key comparator compares one row fetch
     * against every key of the group simultaneously, the way the
     * hardware's match processors amortize a row access across parallel
     * comparators.  Keys whose probe rows are key-dependent (SecondHash
     * chains past the home bucket) or that hash to multiple candidate
     * buckets fall back to the serial chain walk, preserving exact
     * equivalence.
     *
     * Returns the number of row fetches the batched execution performs:
     * a row matched for a whole group counts once, while the serial
     * path would fetch it once per key.  (Per-key bucketsAccessed in
     * @p out still reports the serial-equivalent count -- the fetch
     * count is the batched cost model's input.)
     */
    uint64_t searchBatch(const Key *const *keys, unsigned n,
                         SearchResult *out);

    /** Convenience overload over a contiguous key array. */
    uint64_t searchBatch(std::span<const Key> keys, SearchResult *out);

    /** searchBatch() chunks processed / chunks whose group-by sort was
     *  skipped because the chunk arrived already run-ordered (an O(n)
     *  pre-scan detects this before paying the O(n log n) sort). */
    uint64_t batchChunksProcessed() const { return batchChunks_; }
    uint64_t batchSortsSkipped() const { return batchSortsSkipped_; }

    /** Records one insertBatch() chunk ingests (scratch sizing). */
    static constexpr unsigned kMaxIngestBatch = 256;

    /**
     * Bulk insert: the table ends up *bit-identical* to calling
     * insert(records[i]) in order (including rolled-back residue of
     * failed records, aux reach updates and placement statistics), and
     * outcomes[i] -- when requested -- reports exactly what the serial
     * call's InsertSummary would.
     *
     * Internally each chunk simulates the serial placement decisions
     * against a row cache (one fetch per distinct row), then applies
     * all writes row-at-a-time (one writeback per distinct row), so a
     * bursty load touching few distinct buckets pays row-bandwidth
     * instead of record-bandwidth.  The summary reports both the
     * batched row touches and what the serial path would have cost.
     */
    InsertBatchSummary insertBatch(const Record *records, unsigned n,
                                   InsertOutcome *outcomes = nullptr);

    /** Convenience overload over a contiguous record array. */
    InsertBatchSummary insertBatch(std::span<const Record> records,
                                   InsertOutcome *outcomes = nullptr);

    /**
     * Massive data evaluation (paper section 1: the "decoupled match
     * logic can be easily extended to implement more advanced
     * functionality such as massive data evaluation and modification"):
     * stream every row through the match processors and count the
     * records matching @p pattern.  Costs one access per row.
     */
    uint64_t countMatching(const Key &pattern);

    /**
     * Massive data modification: overwrite the data field of every
     * record matching @p pattern with @p new_data.  Returns the number
     * of records updated; costs one access per row.
     */
    uint64_t updateMatching(const Key &pattern, uint64_t new_data);
    /// @}

    /// @name RAM-mode operations (section 3.2)
    /// @{
    uint64_t ramLoad(uint64_t word_addr) const;
    void ramStore(uint64_t word_addr, uint64_t value);
    uint64_t ramWords() const { return array_.wordCount(); }

    /**
     * Rebuild the auxiliary fields and placement statistics by scanning
     * the array -- used after a database was constructed through RAM
     * mode (memory copy / DMA).
     *
     * Exact for fully specified keys (and for ternary keys without
     * don't-care bits in hash positions).  A *spilled* duplicated
     * ternary copy cannot be re-attributed to its true home from the
     * raw array alone; such copies are attributed to the nearest
     * candidate home, which can under-set the true home's overflow
     * reach.  Construct such databases through CAM-mode insert()
     * instead.
     */
    void adoptRamContents();
    /// @}

    /** Direct bucket access (tests, mapping layers). */
    BucketView bucket(uint64_t row) { return {array_, cfg, row}; }

    /** Placement statistics (Tables 2 and 3 inputs). */
    LoadStats loadStats() const;

    /** Per-bucket occupancy (valid slots), for Figure 7. */
    Histogram occupancyHistogram() const;

    /** Number of records currently stored (incl. duplicates). */
    uint64_t size() const { return recordCount; }

    /** Wipe the database and statistics. */
    void clear();

    /** Total buckets accessed by search() calls (AMAL measurement). */
    uint64_t searchAccesses() const { return accessCount; }
    uint64_t searchesPerformed() const { return searchCount; }

    /** Verify aux fields against the raw array; panics on corruption. */
    void checkIntegrity();

    const mem::MemoryArray &array() const { return array_; }

    /// @name Cache-region tracking (row-granular result-cache coherence)
    /// @{
    /** Rows are mapped onto at most this many power-of-two regions;
     *  one bit of a 64-bit region mask per region (matches
     *  engine::ResultCache::kRegions). */
    static constexpr unsigned kCacheRegions = 64;

    /** Region-mask bit covering @p row. */
    uint64_t
    cacheRegionBit(uint64_t row) const
    {
        return uint64_t{1} << ((row >> cacheRegionShift_) & 63);
    }

    /**
     * Region coverage of a lookup for @p search_key: the union of
     * cacheRegionBit() over every candidate home row (the full
     * duplication set, pre-filter pruning NOT applied -- a pruned home
     * that later gains a record must still invalidate) and every row
     * its probe chain can currently touch (distances 0..reach).  A
     * lookup whose enumeration would exceed an internal cost bound
     * returns ~0 (all regions).  Any mutation that could change this
     * lookup's result dirties at least one covered region: a plain
     * slot write dirties the chain row itself, and a reach extension
     * beyond the current chain writes the home row's aux word, whose
     * region is always covered.  Uses the same single-owner discipline
     * as search() (reads bucket aux words unvalidated); @p scratch is
     * caller-owned home scratch, cleared and refilled.
     */
    uint64_t searchRegionMask(const Key &search_key,
                              std::vector<uint64_t> &scratch);

    /**
     * Drain the accumulated dirty-region mask: every row seqlock
     * writer section since the previous call OR-ed its row's region
     * bit in (whole-array guards set all bits).  The engine's writer
     * lane calls this after applying a mutation batch and bumps
     * exactly those regions in the result cache.
     */
    uint64_t
    takeDirtyRegionMask()
    {
        return dirtyRegions_.exchange(0, std::memory_order_relaxed);
    }
    /// @}

    /// @name Online maintenance primitives (engine::MaintenanceEngine)
    ///
    /// All of these follow the same single-mutation-authority rule as
    /// insert()/erase(): the caller must be the thread that owns this
    /// slice's mutations (the engine runs them on the port's writer
    /// lane).  Concurrent searchConcurrent() readers are safe
    /// throughout -- every store happens inside a row seqlock writer
    /// section, and the two-phase migration protocol (publish the new
    /// copy, epoch-quiesce, then remove the old one) guarantees a
    /// reader observes at least one complete copy at every instant.
    /// @{
    /** One stored copy surfaced by maintenanceScanRow(): where it
     *  sits, which home bucket it is attributed to, and at what probe
     *  distance.  Only fully specified keys are reported -- they have
     *  exactly one candidate home, so home and distance are
     *  recoverable from the raw array alone (duplicated ternary
     *  copies are left where insert() put them). */
    struct MaintenanceSlot
    {
        unsigned slot = 0;      ///< slot index within the scanned row
        Record record;          ///< stored key + data
        uint64_t home = 0;      ///< attributed home bucket
        unsigned distance = 0;  ///< probe distance home -> scanned row
    };

    /** Enumerate the attributable copies stored in @p row into @p out
     *  (cleared first).  Returns the number reported. */
    unsigned maintenanceScanRow(uint64_t row,
                                std::vector<MaintenanceSlot> &out);

    /** True when some probe row of @p key at distance < @p distance
     *  from @p home has a free slot -- i.e. a copy currently sitting
     *  at @p distance could be migrated strictly closer to home. */
    bool maintenanceHasCloserSlot(uint64_t home, unsigned distance,
                                  const Key &key);

    /**
     * Shrink @p home's overflow reach to the furthest probe distance
     * that still holds a copy attributable to @p home, after erases
     * have hollowed out the chain tail.  Conservative: a distance
     * stays alive while *any* record in its row lists @p home among
     * its candidate buckets, so no reachable copy ever drops out of
     * the walk (concurrent readers see either reach and find every
     * copy either way).  Linear probing only -- SecondHash strides
     * are key-dependent (the chain is not enumerable without the
     * departed keys) and None never sets a reach.  Returns the number
     * of distances trimmed (0 if nothing changed).
     */
    unsigned maintenanceTrimReach(uint64_t home);
    /// @}

  private:
    /** Row probed at distance @p d from @p home for @p key. */
    uint64_t probeRow(uint64_t home, unsigned d, const Key &key) const;

    /**
     * Home buckets of @p key into the per-slice scratch buffer -- the
     * zero-allocation variant of homeRows() the hot paths use.  The
     * returned reference is invalidated by the next call.
     */
    const std::vector<uint64_t> &homeRowsInto(const Key &key);

    /** Search one home bucket chain with the packed search key;
     *  updates @p best under LPM. */
    bool searchChain(uint64_t home, const MatchProcessor::PackedKey &packed,
                     SearchResult &best, std::vector<uint64_t> *trace);

    /** One chunk (n <= kMaxBatch) of searchBatch(); returns fetches. */
    uint64_t searchBatchChunk(const Key *const *keys, unsigned n,
                              SearchResult *out);

    /** One chunk (n <= kMaxIngestBatch) of insertBatch(). */
    InsertBatchSummary insertBatchChunk(const Record *records, unsigned n,
                                        InsertOutcome *outcomes);

    /**
     * Walk one shared probe chain for a group of same-home keys
     * (d-th row identical for every key: Linear/None probing, or a
     * zero-reach home).  @p pf routes each lane through the pre-filter
     * (sig/sigUsable scratch must be filled); a row is fetched only
     * when at least one live lane passes.  Returns the row fetches
     * performed.
     */
    uint64_t searchGroupChain(uint64_t home, unsigned reach,
                              const uint32_t *idx, unsigned group_size,
                              SearchResult *out, bool pf);

    /** Remove one copy homed at @p home; returns true when found. */
    bool eraseAt(uint64_t home, const Key &key);

    /**
     * Writer side of the row seqlock: bump the row's (striped) sequence
     * to odd on entry, back to even on exit, with the fences the
     * TSan-clean seqlock recipe requires (entry: relaxed increment then
     * release fence, so the data stores cannot float above the odd
     * value; exit: release increment, so they cannot sink below the
     * even one).  Guards must NOT nest -- a second guard on the same
     * stripe would flip the sequence back to even mid-write -- so every
     * mutation site takes disjoint, sequential guard scopes.
     */
    class [[nodiscard]] RowWriteGuard
    {
      public:
        RowWriteGuard(CaRamSlice &s, uint64_t row);
        ~RowWriteGuard();
        RowWriteGuard(const RowWriteGuard &) = delete;
        RowWriteGuard &operator=(const RowWriteGuard &) = delete;

      private:
        std::atomic<uint64_t> &seq_;
    };

    /** Record @p row as dirtied for cache-region accounting; called by
     *  every RowWriteGuard construction (the guard brackets exactly
     *  the stores that can change a lookup's outcome). */
    void
    noteRowDirty(uint64_t row)
    {
        dirtyRegions_.fetch_or(cacheRegionBit(row),
                               std::memory_order_relaxed);
    }

    /** Whole-array writer guard for clear()/adoptRamContents(): marks
     *  every stripe busy for the duration. */
    class [[nodiscard]] AllRowsWriteGuard
    {
      public:
        explicit AllRowsWriteGuard(CaRamSlice &s);
        ~AllRowsWriteGuard();
        AllRowsWriteGuard(const AllRowsWriteGuard &) = delete;
        AllRowsWriteGuard &operator=(const AllRowsWriteGuard &) = delete;

      private:
        CaRamSlice &slice_;
    };

    /** Seqlock-validated snapshot of @p row into @p dst (wordsPerRow
     *  words); retries until a consistent copy is read. */
    void snapshotRowConcurrent(uint64_t row, uint64_t *dst) const;

    /** True when fault injection wants the next snapshot to retry. */
    bool tearPending() const;

    /** Consultation on and the filter trustworthy (not suspended by a
     *  RAM-mode store)?  Checked once per search entry point. */
    bool
    prefilterActive() const
    {
        return prefilterEnabled_.load(std::memory_order_relaxed) &&
               !filter_.suspended();
    }

    /**
     * Filter consult for concurrent readers: the verdict is trusted
     * only when @p row's seqlock stripe was quiescent across the read
     * (every filter write happens inside a writer section, so a
     * validated read observes a published filter state).  Returns true
     * -- fetch the row -- whenever validation fails; the error stays
     * one-sided (see DESIGN.md section 4e).
     */
    bool prefilterMayMatchConcurrent(uint64_t row, uint64_t sig,
                                     bool sig_usable) const;

    /** Validated home consult: mayMatch plus the mirrored reach.  When
     *  validation fails, returns false with @p valid cleared -- the
     *  caller snapshots the home row and reads its reach instead. */
    bool prefilterConsultHomeConcurrent(uint64_t home, uint64_t sig,
                                        bool sig_usable,
                                        unsigned &reach_out,
                                        bool &valid) const;

    SliceConfig cfg;
    std::unique_ptr<hash::IndexGenerator> idxGen;
    mem::MemoryArray array_;
    MatchProcessor matcher;

    // Per-slice scratch reused across lookups so a steady-state search
    // performs no heap allocation: the expanded search key (the match
    // processor's step-1 template) and the candidate home rows
    // (homeRowsInto()'s backing store).  A slice therefore must not
    // serve concurrent scratch-using calls -- the same ownership rule
    // the search counters below already impose (the parallel engine
    // gives each database to exactly one worker).  Intra-lookup shard
    // workers must NOT route through these: they use packSearchKey()/
    // candidateHomes()/searchRows() with shard-local scratch instead.
    // scratchGuard_ enforces the rule in every build (two uncontended
    // atomic ops per operation -- noise next to a row walk): each
    // scratch-using entry point panics if it observes another one in
    // flight, so aliasing bugs surface deterministically in tests
    // instead of relying on TSan luck.
    MatchProcessor::PackedKey packedKey_;
    std::vector<uint64_t> homesScratch;
    mutable std::atomic<int> scratchGuard_{0};

    /** RAII concurrent-entry detector for the per-slice scratch. */
    class [[nodiscard]] ScratchUse
    {
      public:
        explicit ScratchUse(const CaRamSlice &s);
        ~ScratchUse();

      private:
        const CaRamSlice &slice_;
    };

    /** searchBatch() scratch, sized once: per-key packed templates and
     *  grouping tables for one chunk, plus the transposed key group.
     *  Same single-owner rule as the scratch above. */
    struct BatchScratch
    {
        std::array<MatchProcessor::PackedKey, kMaxBatch> packed;
        std::array<uint64_t, kMaxBatch> home;
        std::array<uint32_t, kMaxBatch> order;
        /** Per-key pre-filter signature + usability, filled only when
         *  the filter is consulted for the chunk. */
        std::array<uint64_t, kMaxBatch> sig;
        std::array<uint8_t, kMaxBatch> sigUsable;
        MatchProcessor::PackedKeyGroup group;
        std::array<BucketMatch, kernels::kMaxGroupKeys> groupOut;
    };
    BatchScratch batch_;

    /** insertBatch() scratch: a row cache holding every distinct row a
     *  chunk touches (fetched once), the simulated placements in
     *  submission order, and the row-ordered apply schedule.  All
     *  vectors retain capacity across calls, so steady-state bulk
     *  ingest performs no heap allocation.  Same single-owner rule as
     *  the search scratch. */
    struct IngestScratch
    {
        /** One cached (simulated) row: aux fields plus a valid-slot
         *  bitmask; key/data bits are only ever *written* by the
         *  placements, so they need no cache copy. */
        std::vector<uint64_t> row;      ///< row index per cache entry
        std::vector<uint16_t> used;     ///< simulated usedCount
        std::vector<uint16_t> reach;    ///< simulated overflow reach
        std::vector<uint16_t> usedAtFetch;  ///< aux as fetched
        std::vector<uint16_t> reachAtFetch; ///< aux as fetched
        std::vector<uint8_t> dirty;     ///< entry needs a writeback
        std::vector<uint64_t> valid;    ///< maskWords valid bits / entry
        /** Open-addressed row -> cache entry map (pow2, -1 = empty). */
        std::vector<int32_t> table;
        /** Precomputed home row per chunk record (software-prefetch
         *  schedule); ~0 marks records without a precomputable home. */
        std::vector<uint64_t> pfRow;

        /** One simulated slot write, in submission order. */
        struct Placement
        {
            uint32_t rec;       ///< chunk-relative record index
            uint32_t slot;      ///< slot within the row
            uint32_t entry;     ///< row cache entry of the placed row
            uint32_t homeEntry; ///< row cache entry of the home row
            uint32_t d;         ///< probe distance from home
            uint8_t dead;       ///< rolled back: write bits, clear valid
        };
        std::vector<Placement> placements;
        /** (row, placement seq) apply schedule, sorted in place. */
        std::vector<std::pair<uint64_t, uint32_t>> applyOrder;
    };
    IngestScratch ingest_;

    // Placement statistics.
    std::vector<uint32_t> homeDemandPerBucket;
    Histogram distanceHist;
    uint64_t recordCount = 0;
    uint64_t spilledCount = 0;

    // Search accounting.
    uint64_t searchCount = 0;
    uint64_t accessCount = 0;

    // Batched-search accounting (sort-skip effectiveness).
    uint64_t batchChunks_ = 0;
    uint64_t batchSortsSkipped_ = 0;

    // Striped per-row sequence locks: stripe count is the row count
    // rounded up to a power of two, capped at 64 Ki stripes (1 MiB of
    // padded counters).  False sharing between adjacent stripes is
    // avoided by cache-line alignment; false *conflicts* (two rows on
    // one stripe) only cost a reader retry, never correctness.  The
    // writer side assumes a single mutating thread per slice -- the
    // ownership rule the scratch guard already enforces -- so the
    // sequence bump needs no CAS.
    struct alignas(64) RowSeq
    {
        std::atomic<uint64_t> v{0};
    };
    std::vector<RowSeq> rowSeqs_;
    uint64_t seqMask_ = 0;

    // Cache-region accounting: rows map onto <= kCacheRegions
    // power-of-two runs (shift chosen so the top region index fits in
    // 6 bits for any row count, power of two or not); writer sections
    // OR their row's region bit into the dirty accumulator, drained by
    // takeDirtyRegionMask().
    unsigned cacheRegionShift_ = 0;
    std::atomic<uint64_t> dirtyRegions_{0};

    // Torn-read fault injection (CARAM_SEQLOCK_TEAR / the setter) and
    // the retry observability counter.  Mutable: the reader side is
    // const.
    std::atomic<unsigned> tearEvery_{0};
    mutable std::atomic<uint64_t> snapshotTick_{0};
    mutable std::atomic<uint64_t> tornRetries_{0};

    // The per-row counting pre-filter.  Maintained unconditionally by
    // every mutation path (inside the rows' seqlock writer sections);
    // consulted by the search paths only when prefilterEnabled_ says
    // so and no RAM-mode store has suspended it.  The skip/probe
    // counters are atomic because fan-out shard workers walk chains
    // concurrently (relaxed: they are observability, not ordering).
    RowPrefilter filter_;
    std::atomic<bool> prefilterEnabled_{false};
    mutable std::atomic<uint64_t> prefilterProbes_{0};
    mutable std::atomic<uint64_t> prefilterSkips_{0};
};

} // namespace caram::core

#endif // CARAM_CORE_SLICE_H_
