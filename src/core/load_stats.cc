#include "core/load_stats.h"

namespace caram::core {

double
LoadStats::loadFactor() const
{
    const double cap =
        static_cast<double>(buckets) * static_cast<double>(slotsPerBucket);
    return cap == 0.0 ? 0.0 : static_cast<double>(records) / cap;
}

double
LoadStats::overflowingBucketFraction() const
{
    return buckets == 0
        ? 0.0
        : static_cast<double>(overflowingBuckets) /
              static_cast<double>(buckets);
}

double
LoadStats::spilledRecordFraction() const
{
    return records == 0
        ? 0.0
        : static_cast<double>(spilledRecords) /
              static_cast<double>(records);
}

double
LoadStats::amalUniform() const
{
    if (records == 0)
        return 0.0;
    double total = 0.0;
    const auto &bins = distance.bins();
    for (std::size_t d = 0; d < bins.size(); ++d)
        total += static_cast<double>(bins[d]) * static_cast<double>(d + 1);
    return total / static_cast<double>(records);
}

} // namespace caram::core
