#ifndef CARAM_CORE_DATABASE_H_
#define CARAM_CORE_DATABASE_H_

/**
 * @file
 * The programmer-facing database object of paper section 3.2: "it is
 * desirable to hide and encapsulate CA-RAM hardware details in a program
 * construct similar to a C++/Java object which can be accessed only
 * through its access functions".
 *
 * A Database owns a logical CA-RAM slice built from a physical
 * arrangement of slices (horizontal / vertical), optionally an overflow
 * TCAM "accessed simultaneously with the main CA-RAM" so that "AMAL
 * becomes 1" (section 4.3), and the cost/performance model hooks.
 */

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "cam/tcam.h"
#include "core/config.h"
#include "core/load_stats.h"
#include "core/record.h"
#include "core/slice.h"
#include "mem/timing.h"

namespace caram::sim {
class EpochDomain;
}

namespace caram::core {

/** Overflow handling of a database. */
enum class OverflowPolicy
{
    Probing,       ///< spill into subsequent buckets (the slice's policy)
    ParallelTcam,  ///< spill into a victim TCAM searched in parallel
    /** Spill into a dedicated (smaller) CA-RAM slice searched in
     *  parallel -- "one can employ a CAM (alternatively a CA-RAM) to
     *  keep spilled records, similar to victim caching" (section 4),
     *  at RAM density instead of TCAM density. */
    ParallelSlice,
};

/**
 * Power state (paper section 3.2, "setting power management policies"):
 * the eDRAM macro offers "a power-down data retention mode"
 * (Morishita et al. [20]).
 */
enum class PowerState
{
    Active,    ///< full operation
    Retention, ///< contents kept alive; no accesses allowed
};

/** Everything needed to build a Database. */
struct DatabaseConfig
{
    std::string name = "db";

    /** Per-physical-slice shape. */
    SliceConfig sliceShape;

    /** Number of physical slices and how they are arranged. */
    unsigned physicalSlices = 1;
    Arrangement arrangement = Arrangement::Horizontal;

    /**
     * Mixed (grid) arrangement: when both are nonzero, the database is
     * gridVertical x gridHorizontal physical slices and
     * physicalSlices/arrangement are ignored (section 3.2's "mixed
     * way").
     */
    unsigned gridVertical = 0;
    unsigned gridHorizontal = 0;

    OverflowPolicy overflow = OverflowPolicy::Probing;
    /** Victim TCAM capacity when overflow == ParallelTcam. */
    std::size_t overflowCapacity = 0;
    /** Overflow slice shape when overflow == ParallelSlice. */
    unsigned overflowIndexBits = 0;
    unsigned overflowSlots = 0;

    /**
     * Builds the index generator for the *effective* (arranged) slice
     * configuration.
     */
    std::function<std::unique_ptr<hash::IndexGenerator>(
        const SliceConfig &)> indexFactory;

    /** The effective logical configuration. */
    SliceConfig effectiveConfig() const;
};

/** A searchable database hosted on CA-RAM. */
class Database
{
  public:
    explicit Database(DatabaseConfig config);

    const std::string &name() const { return cfg.name; }
    const DatabaseConfig &config() const { return cfg; }
    PhysicalLayout layout() const;

    /** Detailed outcome of an insert, for AMAL accounting. */
    struct DetailedInsert
    {
        bool ok = false;
        unsigned copies = 0;     ///< CA-RAM copies placed
        unsigned tcamCopies = 0; ///< overflow entries created (0 or 1)
        unsigned maxDistance = 0;
        /** Expected memory accesses to look this record up, averaged
         *  over its duplicated copies (1 + probe distance; overflow
         *  entries cost a single parallel access). */
        double meanAccessCost = 0.0;
    };

    /**
     * Insert a record.  @p priority orders multi-matches in the victim
     * TCAM (use the prefix length for LPM databases).  Copies that do
     * not fit their bucket go to the overflow TCAM when configured.
     */
    bool insert(const Record &record, int priority = 0);

    /** insert() with placement detail. */
    DetailedInsert insertDetailed(const Record &record, int priority = 0);

    /**
     * Bulk insert: the contents end up identical to inserting the
     * records one at a time, in order.  Probing databases take the
     * row-ordered CaRamSlice::insertBatch fast path (one fetch + one
     * writeback per distinct row); databases with a parallel overflow
     * area place records one at a time through insertDetailed() --
     * those records are counted in the summary's fallbackRecords.
     * @p outcomes (length records.size()) receives per-record results;
     * @p priorities, when given, supplies each record's multi-match
     * priority for overflow-TCAM spills.
     */
    InsertBatchSummary insertBatch(std::span<const Record> records,
                                   InsertOutcome *outcomes = nullptr,
                                   const int *priorities = nullptr);

    /** Outcome of one rebuild() pass. */
    struct RebuildSummary
    {
        bool ok = false;            ///< ran and every record was re-placed
        uint64_t records = 0;       ///< logical records re-ingested
        uint64_t failedRecords = 0; ///< records that no longer fit
        InsertBatchSummary ingest;  ///< bulk re-ingest accounting
    };

    /**
     * True when the contents can be reconstructed from the slices
     * alone: Probing always can (a record's duplicated copies are
     * recovered by dividing its stored multiplicity by its
     * candidate-home count -- exact because insert() is
     * all-or-nothing); ParallelSlice only for binary keys (single
     * home, so main and overflow multiplicities simply add);
     * ParallelTcam never (TCAM entries and their multi-match
     * priorities are not enumerable from outside).
     */
    bool canRebuild() const;

    /**
     * Repack after load-factor drift: collect every stored record,
     * clear, and bulk re-ingest through insertBatch().  Erase-created
     * slot holes close up and probe chains shorten; placements may
     * move, but the searchable record set is preserved.  Returns
     * ok == false without touching the contents when !canRebuild();
     * a nonzero failedRecords means some records no longer fit (they
     * are dropped -- check before relying on a rebuilt table).
     */
    RebuildSummary rebuild();

    /**
     * rebuild() variant that never blocks concurrent readers: collects
     * the records, bulk-ingests them into a *fresh* slice, atomically
     * publishes the new slice, and retires the old one into @p domain
     * (it is deleted once every epoch-guarded reader that could still
     * hold it has exited).  The resulting table is bit-identical to
     * rebuild()'s.  Probing-only (the overflow areas have no concurrent
     * read path); returns ok == false without touching the contents
     * otherwise.  Single-writer: the caller must serialize this against
     * every other mutation on the database, exactly as for rebuild().
     */
    RebuildSummary rebuildSwap(sim::EpochDomain &domain);

    /**
     * Wait-free lookup against the live slice, safe under a concurrent
     * rebuildSwap()/insert/erase by the (single) writer thread.  The
     * caller MUST hold a sim::EpochDomain::Guard on the domain passed
     * to rebuildSwap() for the whole call, or the slice could be
     * reclaimed mid-read.  Probing-only (fatal otherwise).  Returns a
     * miss without touching the array when the database is in
     * retention.  No search counters are advanced (see
     * CaRamSlice::searchConcurrent).
     */
    SearchResult searchConcurrent(
        const Key &search_key,
        CaRamSlice::ConcurrentSearchScratch &scratch) const;

    /** Search the CA-RAM (and the overflow TCAM, in parallel). */
    SearchResult search(const Key &search_key);

    /**
     * Batched lookup: out[i] identical to search(*keys[i]) for every
     * key (see CaRamSlice::searchBatch for the grouping and fallback
     * rules).  Returns the row fetches the batched execution performs
     * -- the amortized cost the batch cost model charges, as opposed to
     * the serial-equivalent per-key bucketsAccessed in @p out.
     */
    uint64_t searchBatch(const Key *const *keys, unsigned n,
                         SearchResult *out);

    /**
     * Fold the parallel overflow area's verdict into a main-slice
     * search result -- the public tail of search() for callers that
     * produced @p result themselves via the shard-scoped fan-out path
     * (CaRamSlice::searchRows + mergeShardResults).  Applying this to
     * the merged shard result reproduces search() bit-identically,
     * including the ParallelSlice max-of-both-paths bucketsAccessed.
     * Returns the overflow-area row fetches (0 for ParallelTcam and
     * Probing), which overlap the main-slice shards in modeled time.
     */
    uint64_t mergeOverflowResult(const Key &search_key,
                                 SearchResult &result);

    /** Remove all copies of @p key; returns the number removed. */
    unsigned erase(const Key &key);

    /** Number of records (CA-RAM copies + overflow entries). */
    uint64_t size() const;

    void clear();

    CaRamSlice &slice() { return *slice_; }
    const CaRamSlice &slice() const { return *slice_; }

    /**
     * Enable or disable pre-filter consultation on the main slice and
     * (when present) the overflow slice.  rebuildSwap() carries the
     * flag onto the replacement slice, so the setting is durable across
     * online rebuilds.
     */
    void
    setPrefilterEnabled(bool on)
    {
        slice_->setPrefilterEnabled(on);
        if (overflowSlice_)
            overflowSlice_->setPrefilterEnabled(on);
    }

    bool prefilterEnabled() const { return slice_->prefilterEnabled(); }

    /** The overflow TCAM, or nullptr when not using ParallelTcam. */
    cam::Tcam *overflowTcam() { return overflow_.get(); }
    const cam::Tcam *overflowTcam() const { return overflow_.get(); }

    /** The overflow CA-RAM slice, or nullptr when not using
     *  ParallelSlice. */
    CaRamSlice *overflowSlice() { return overflowSlice_.get(); }

    /** Records that went to the overflow area. */
    uint64_t
    overflowEntries() const
    {
        if (overflow_)
            return overflow_->size();
        if (overflowSlice_)
            return overflowSlice_->size();
        return 0;
    }

    /** True when lookups consult a parallel overflow area (victim TCAM
     *  or overflow slice).  Overflow writes are folded into the main
     *  slice's row regions through noteOverflowMutation(), so row
     *  granular cache coherence stays precise on such databases. */
    bool hasOverflowArea() const { return overflow_ || overflowSlice_; }

    /**
     * Region coverage of a lookup (CaRamSlice::searchRegionMask over
     * the main slice).  The same coverage is sound for the overflow
     * area: an overflow write that can change this lookup's outcome
     * involves a record this key matches, and a matching record shares
     * at least one candidate home row with the key (its stored value
     * agrees with the key's on every mutually cared index bit), so the
     * noteOverflowMutation() mask recorded at the write intersects the
     * mask stamped here.
     */
    uint64_t
    searchRegionMask(const Key &key, std::vector<uint64_t> &scratch)
    {
        return slice_->searchRegionMask(key, scratch);
    }

    /** Drain the dirty-region accumulators: the main slice's seqlock
     *  writer sections plus every overflow-area write recorded through
     *  noteOverflowMutation(). */
    uint64_t
    takeDirtyRegionMask()
    {
        uint64_t mask = slice_->takeDirtyRegionMask();
        if (hasOverflowArea())
            mask |=
                overflowDirtyRegions_.exchange(0, std::memory_order_relaxed);
        return mask;
    }

    /**
     * Record that the overflow area gained, lost, or modified a copy
     * of @p key: ORs the key's *main-slice* region coverage into the
     * overflow dirty accumulator, so takeDirtyRegionMask() invalidates
     * exactly the regions whose lookups the write could affect (see
     * searchRegionMask()).  Call from the mutation authority only --
     * every Database overflow write path does, and the engine's
     * maintenance adoption step does when it migrates an overflow
     * record home.
     */
    void noteOverflowMutation(const Key &key);

    /** Placement statistics of the CA-RAM part. */
    LoadStats loadStats() const { return slice_->loadStats(); }

    /**
     * AMAL of this database: with a parallel overflow TCAM every lookup
     * is a single access; with probing it follows the placement.
     */
    double amal() const;

    /// @name Cost model (paper sections 3.4 / 4.3)
    /// @{
    /** Nominal key storage bits (the paper's area accounting). */
    uint64_t nominalStorageBits() const;

    /** Area in um^2, including the overflow TCAM when present. */
    double areaUm2() const;

    /** Average energy per lookup, nJ, at the current AMAL. */
    double searchEnergyNj() const;

    /** Sustained power at @p searches_per_sec lookups/s. */
    double powerW(double searches_per_sec) const;

    /** Paper eq: B = N_slice / n_mem * f_clk (independent banks only). */
    double searchBandwidthMsps(const mem::MemTiming &timing) const;
    /// @}

    /// @name Power management (section 3.2)
    /// @{
    PowerState
    powerState() const
    {
        return powerState_.load(std::memory_order_acquire);
    }

    /** Enter/leave the data-retention mode.  CAM-mode operations on a
     *  retained database throw FatalError. */
    void
    setPowerState(PowerState state)
    {
        powerState_.store(state, std::memory_order_release);
    }
    /// @}

  private:
    /** Throws when the database is not accessible. */
    void checkAccessible() const;

    /** Fold the parallel overflow area's verdict into @p result (the
     *  shared tail of search()/searchBatch()); adds any overflow-slice
     *  row accesses to @p overflow_fetches. */
    void mergeOverflow(const Key &search_key, SearchResult &result,
                       uint64_t &overflow_fetches);

    DatabaseConfig cfg;
    std::unique_ptr<CaRamSlice> slice_;
    std::unique_ptr<cam::Tcam> overflow_;
    std::unique_ptr<CaRamSlice> overflowSlice_;
    /** The slice searchConcurrent() readers see.  Equal to slice_.get()
     *  except transiently inside rebuildSwap(), which publishes the
     *  fresh slice here before retiring the old one.  seq_cst with the
     *  epoch slots so publish/pin interleavings totally order. */
    std::atomic<const CaRamSlice *> liveSlice_{nullptr};
    /** Atomic: read by concurrent-search readers while the owner flips
     *  retention (powerState()/checkAccessible() vs setPowerState()). */
    std::atomic<PowerState> powerState_{PowerState::Active};
    /** Main-slice region bits dirtied by overflow-area writes since the
     *  last takeDirtyRegionMask() (see noteOverflowMutation()).  Atomic
     *  only for the exchange pairing with the drain; writes come from
     *  the single mutation authority. */
    std::atomic<uint64_t> overflowDirtyRegions_{0};
};

} // namespace caram::core

#endif // CARAM_CORE_DATABASE_H_
