#include "core/prefilter.h"

namespace caram::core {

void
RowPrefilter::reset(uint64_t rows)
{
    words_ = std::vector<std::atomic<uint64_t>>(rows * kWordsPerRow);
    suspended_.store(false, std::memory_order_relaxed);
}

uint64_t
RowPrefilter::signatureOf(const Key &key)
{
    // splitmix64-style finalizer folded over the value words: the low
    // 12 bits (two 6-bit counter indices) must be well mixed even for
    // keys differing in a single high bit.
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint64_t w : key.valueWords()) {
        h ^= w;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        h ^= h >> 31;
    }
    return h;
}

void
RowPrefilter::bump(uint64_t row, uint64_t c, bool up)
{
    std::atomic<uint64_t> &w = words_[row * kWordsPerRow + (c >> 4)];
    const unsigned shift = static_cast<unsigned>(c & 15) * 4;
    uint64_t v = w.load(std::memory_order_relaxed);
    const uint64_t nib = (v >> shift) & kCounterMax;
    // Sticky saturation: a counter that ever hit 15 lost its exact
    // contributor count -- it must never move again (a decrement could
    // otherwise reach 0 while masked contributors remain, turning the
    // one-sided error into a missed hit).
    if (nib == kCounterMax)
        return;
    const uint64_t next = up ? nib + 1 : nib - 1;
    w.store((v & ~(kCounterMax << shift)) | (next << shift),
            std::memory_order_relaxed);
}

void
RowPrefilter::add(uint64_t row, const Key &key)
{
    std::atomic<uint64_t> &m = meta(row);
    uint64_t v = m.load(std::memory_order_relaxed);
    if (key.fullySpecified()) {
        const uint64_t sig = signatureOf(key);
        bump(row, sig & 63, true);
        bump(row, (sig >> 6) & 63, true);
    } else {
        v += uint64_t{1} << 16; // wildcard keys gate the counter block
    }
    m.store(v + 1, std::memory_order_relaxed); // occupancy
}

void
RowPrefilter::remove(uint64_t row, const Key &key)
{
    std::atomic<uint64_t> &m = meta(row);
    uint64_t v = m.load(std::memory_order_relaxed);
    if (key.fullySpecified()) {
        const uint64_t sig = signatureOf(key);
        bump(row, sig & 63, false);
        bump(row, (sig >> 6) & 63, false);
    } else {
        v -= uint64_t{1} << 16;
    }
    m.store(v - 1, std::memory_order_relaxed);
}

void
RowPrefilter::setReach(uint64_t row, unsigned reach)
{
    std::atomic<uint64_t> &m = meta(row);
    const uint64_t v = m.load(std::memory_order_relaxed);
    m.store((v & ~(uint64_t{0xffff} << 32)) |
                (static_cast<uint64_t>(reach & 0xffff) << 32),
            std::memory_order_relaxed);
}

void
RowPrefilter::clearAll()
{
    for (std::atomic<uint64_t> &w : words_)
        w.store(0, std::memory_order_relaxed);
    suspended_.store(false, std::memory_order_relaxed);
}

} // namespace caram::core
