#include "core/slice.h"

#include <algorithm>
#include <bit>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/strings.h"

namespace caram::core {

CaRamSlice::CaRamSlice(const SliceConfig &config,
                       std::unique_ptr<hash::IndexGenerator> index_gen)
    : cfg(config),
      idxGen(std::move(index_gen)),
      array_(config.rows(), config.storageRowBits()),
      matcher(cfg)
{
    cfg.validate();
    if (!idxGen)
        fatal("slice requires an index generator");
    if (idxGen->rowCount() != cfg.rows())
        fatal(strprintf("index generator addresses %llu rows but the "
                        "slice has %llu",
                        (unsigned long long)idxGen->rowCount(),
                        (unsigned long long)cfg.rows()));
    homeDemandPerBucket.assign(cfg.rows(), 0);
}

uint64_t
CaRamSlice::homeRow(const Key &key) const
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    return idxGen->index(key.valueWords(), key.bits());
}

std::vector<uint64_t>
CaRamSlice::homeRows(const Key &key) const
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    std::vector<uint64_t> homes;
    idxGen->candidateIndices(key.valueWords(), key.careWords(), key.bits(),
                             homes);
    return homes;
}

const std::vector<uint64_t> &
CaRamSlice::homeRowsInto(const Key &key)
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    homesScratch.clear();
    // Fully specified keys (the common lookup traffic) have exactly one
    // candidate: skip the per-tap care scan of candidateIndices.
    if (key.fullySpecified())
        homesScratch.push_back(idxGen->index(key.valueWords(), key.bits()));
    else
        idxGen->candidateIndices(key.valueWords(), key.careWords(),
                                 key.bits(), homesScratch);
    return homesScratch;
}

uint64_t
CaRamSlice::probeRow(uint64_t home, unsigned d, const Key &key) const
{
    if (d == 0)
        return home;
    const uint64_t rows = cfg.rows();
    switch (cfg.probe) {
      case ProbePolicy::None:
        panic("probing disabled but a nonzero distance was requested");
      case ProbePolicy::Linear:
        return (home + d) % rows;
      case ProbePolicy::SecondHash: {
        // A fixed odd stride derived from a second (xor-fold) hash of
        // the key; odd strides cycle through the power-of-two row space
        // (validate() rejects SecondHash on non-power-of-two rows).
        uint64_t h = 0;
        for (uint64_t w : key.valueWords())
            h ^= w;
        h ^= h >> cfg.indexBits;
        const uint64_t step = (h & (rows - 1)) | 1;
        return (home + d * step) & (rows - 1);
      }
    }
    panic("unreachable probe policy");
}

InsertResult
CaRamSlice::insertAt(uint64_t home_row, const Record &record)
{
    InsertResult result;
    result.homeRow = home_row;
    const unsigned max_d =
        cfg.probe == ProbePolicy::None ? 0 : cfg.maxProbeDistance;
    for (unsigned d = 0; d <= max_d; ++d) {
        const uint64_t row = probeRow(home_row, d, record.key);
        BucketView b = bucket(row);
        // Fast path: with insert-only workloads slots fill in order, so
        // the aux used count points at the first free slot.
        int slot = -1;
        const unsigned used = b.usedCount();
        if (used < cfg.slotsPerBucket && !b.slotValid(used))
            slot = static_cast<int>(used);
        else
            slot = b.firstFreeSlot();
        if (slot < 0)
            continue;
        b.writeSlot(static_cast<unsigned>(slot), record.key, record.data);
        b.setUsedCount(b.usedCount() + 1);
        BucketView home = bucket(home_row);
        home.setReach(std::max(home.reach(), d));
        ++homeDemandPerBucket[home_row];
        distanceHist.add(d);
        ++recordCount;
        if (d > 0)
            ++spilledCount;
        result.ok = true;
        result.placedRow = row;
        result.slot = static_cast<unsigned>(slot);
        result.distance = d;
        return result;
    }
    return result; // ok == false: no space within the probe limit
}

void
CaRamSlice::removePlacement(const InsertResult &placement)
{
    if (!placement.ok)
        panic("cannot remove a failed placement");
    BucketView b = bucket(placement.placedRow);
    if (!b.slotValid(placement.slot))
        panic("placement slot is no longer valid");
    b.clearSlot(placement.slot);
    b.setUsedCount(b.usedCount() - 1);
    --homeDemandPerBucket[placement.homeRow];
    distanceHist.remove(placement.distance);
    --recordCount;
    if (placement.distance > 0)
        --spilledCount;
}

InsertSummary
CaRamSlice::insert(const Record &record)
{
    InsertSummary summary;
    const auto homes = homeRows(record.key);
    summary.copies = static_cast<unsigned>(homes.size());
    for (uint64_t home : homes) {
        InsertResult r = insertAt(home, record);
        if (!r.ok) {
            // All-or-nothing: roll back exactly the copies this call
            // placed (an identical pre-existing record is untouched).
            for (const InsertResult &placed : summary.placements)
                removePlacement(placed);
            summary.ok = false;
            summary.placements.clear();
            return summary;
        }
        summary.maxDistance = std::max(summary.maxDistance, r.distance);
        summary.placements.push_back(r);
    }
    summary.ok = true;
    return summary;
}

bool
CaRamSlice::searchChain(uint64_t home,
                        const MatchProcessor::PackedKey &packed,
                        SearchResult &best, std::vector<uint64_t> *trace)
{
    const unsigned reach = bucket(home).reach();
    for (unsigned d = 0; d <= reach; ++d) {
        const uint64_t row = probeRow(home, d, packed.key);
        ++best.bucketsAccessed;
        if (trace)
            trace->push_back(row);
        BucketView b = bucket(row);
        const BucketMatch m = cfg.lpm
            ? matcher.searchBucketBestPacked(b, packed)
            : matcher.searchBucketPacked(b, packed);
        if (!m.hit)
            continue;
        if (!cfg.lpm) {
            best.hit = true;
            best.multipleMatch = m.multipleMatch;
            best.row = row;
            best.slot = m.slot;
            best.data = m.data;
            best.key = m.key;
            return true;
        }
        // LPM: keep the match with the most specified bits across the
        // whole probe chain (spilled entries are the lower-priority
        // ones, but a spilled long prefix must still win).
        const unsigned pop = m.key.carePopcount();
        if (!best.hit || pop > best.key.carePopcount()) {
            best.hit = true;
            best.multipleMatch = m.multipleMatch;
            best.row = row;
            best.slot = m.slot;
            best.data = m.data;
            best.key = m.key;
        }
    }
    return false;
}

SearchResult
CaRamSlice::search(const Key &search_key)
{
    ++searchCount;
    SearchResult best;
    matcher.pack(search_key, packedKey_);
    // A search key with don't-care bits in hash positions must access
    // every candidate bucket (section 4, "Discussions").
    for (uint64_t home : homeRowsInto(search_key)) {
        if (searchChain(home, packedKey_, best, nullptr))
            break; // non-LPM first hit
    }
    accessCount += best.bucketsAccessed;
    return best;
}

SearchResult
CaRamSlice::searchTraced(const Key &search_key,
                         std::vector<uint64_t> &rows_accessed)
{
    ++searchCount;
    SearchResult best;
    matcher.pack(search_key, packedKey_);
    for (uint64_t home : homeRowsInto(search_key)) {
        if (searchChain(home, packedKey_, best, &rows_accessed))
            break;
    }
    accessCount += best.bucketsAccessed;
    return best;
}

uint64_t
CaRamSlice::searchGroupChain(uint64_t home, unsigned reach,
                             const uint32_t *idx, unsigned group_size,
                             SearchResult *out)
{
    auto &sc = batch_;
    const MatchProcessor::PackedKey *ptrs[kernels::kMaxGroupKeys];
    for (unsigned k = 0; k < group_size; ++k)
        ptrs[k] = &sc.packed[idx[k]];
    matcher.packGroup(ptrs, group_size, sc.group);

    uint64_t fetches = 0;
    if (!cfg.lpm) {
        // Keys leave the group on their first hit, exactly where the
        // serial chain walk would stop counting accesses for them.
        uint32_t alive = sc.group.keyMask;
        for (unsigned d = 0; d <= reach && alive; ++d) {
            // The probe row is key-independent on this path (d == 0, or
            // Linear probing) -- any group member's key works.
            const uint64_t row = probeRow(home, d, ptrs[0]->key);
            ++fetches;
            for (uint32_t m = alive; m; m &= m - 1)
                ++out[idx[std::countr_zero(m)]].bucketsAccessed;
            matcher.searchBucketKeys(bucket(row), sc.group, alive,
                                     sc.groupOut.data());
            for (uint32_t m = alive; m; m &= m - 1) {
                const unsigned k =
                    static_cast<unsigned>(std::countr_zero(m));
                const BucketMatch &bm = sc.groupOut[k];
                if (!bm.hit)
                    continue;
                SearchResult &r = out[idx[k]];
                r.hit = true;
                r.multipleMatch = bm.multipleMatch;
                r.row = row;
                r.slot = bm.slot;
                r.data = bm.data;
                r.key = bm.key;
                alive &= ~(1u << k);
            }
        }
    } else {
        // LPM: every key walks the whole chain, keeping its best match
        // by specified-bit count (same merge as searchChain).
        for (unsigned d = 0; d <= reach; ++d) {
            const uint64_t row = probeRow(home, d, ptrs[0]->key);
            ++fetches;
            for (unsigned k = 0; k < group_size; ++k)
                ++out[idx[k]].bucketsAccessed;
            matcher.searchBucketBestKeys(bucket(row), sc.group,
                                         sc.group.keyMask,
                                         sc.groupOut.data());
            for (unsigned k = 0; k < group_size; ++k) {
                const BucketMatch &bm = sc.groupOut[k];
                if (!bm.hit)
                    continue;
                SearchResult &r = out[idx[k]];
                const unsigned pop = bm.key.carePopcount();
                if (!r.hit || pop > r.key.carePopcount()) {
                    r.hit = true;
                    r.multipleMatch = bm.multipleMatch;
                    r.row = row;
                    r.slot = bm.slot;
                    r.data = bm.data;
                    r.key = bm.key;
                }
            }
        }
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatchChunk(const Key *const *keys, unsigned n,
                             SearchResult *out)
{
    auto &sc = batch_;
    uint64_t fetches = 0;
    unsigned groupable = 0;
    for (unsigned i = 0; i < n; ++i) {
        ++searchCount;
        out[i] = SearchResult{};
        matcher.pack(*keys[i], sc.packed[i]);
        const auto &homes = homeRowsInto(*keys[i]);
        if (homes.size() == 1) {
            sc.home[i] = homes[0];
            sc.order[groupable++] = i;
            continue;
        }
        // Don't-care bits in hash positions: the key must access every
        // candidate bucket -- serial walk, identical to search().
        for (uint64_t home : homes) {
            if (searchChain(home, sc.packed[i], out[i], nullptr))
                break;
        }
        fetches += out[i].bucketsAccessed;
        accessCount += out[i].bucketsAccessed;
    }

    // Group single-home keys by home bucket; ties keep submission order
    // so a group's first-hit bookkeeping mirrors the serial stream.
    std::sort(sc.order.begin(), sc.order.begin() + groupable,
              [&sc](uint32_t a, uint32_t b) {
                  return sc.home[a] != sc.home[b] ? sc.home[a] < sc.home[b]
                                                  : a < b;
              });
    unsigned pos = 0;
    while (pos < groupable) {
        const uint64_t home = sc.home[sc.order[pos]];
        unsigned end = pos + 1;
        while (end < groupable && sc.home[sc.order[end]] == home)
            ++end;
        const unsigned reach = bucket(home).reach();
        // SecondHash probe rows depend on the key, so a chain that
        // leaves the home bucket cannot be shared.
        const bool shareable =
            cfg.probe != ProbePolicy::SecondHash || reach == 0;
        if (!shareable || end - pos == 1) {
            for (unsigned j = pos; j < end; ++j) {
                const unsigned i = sc.order[j];
                searchChain(home, sc.packed[i], out[i], nullptr);
                fetches += out[i].bucketsAccessed;
                accessCount += out[i].bucketsAccessed;
            }
        } else {
            for (unsigned j = pos; j < end;
                 j += kernels::kMaxGroupKeys) {
                const unsigned gsz = std::min(
                    kernels::kMaxGroupKeys, end - j);
                fetches += searchGroupChain(home, reach,
                                            sc.order.data() + j, gsz,
                                            out);
                for (unsigned k = 0; k < gsz; ++k) {
                    accessCount +=
                        out[sc.order[j + k]].bucketsAccessed;
                }
            }
        }
        pos = end;
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatch(const Key *const *keys, unsigned n,
                        SearchResult *out)
{
    uint64_t fetches = 0;
    for (unsigned off = 0; off < n; off += kMaxBatch) {
        const unsigned chunk = std::min(kMaxBatch, n - off);
        fetches += searchBatchChunk(keys + off, chunk, out + off);
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatch(std::span<const Key> keys, SearchResult *out)
{
    uint64_t fetches = 0;
    std::array<const Key *, kMaxBatch> ptrs;
    for (std::size_t off = 0; off < keys.size(); off += kMaxBatch) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::size_t>(kMaxBatch, keys.size() - off));
        for (unsigned i = 0; i < chunk; ++i)
            ptrs[i] = &keys[off + i];
        fetches += searchBatchChunk(ptrs.data(), chunk, out + off);
    }
    return fetches;
}

bool
CaRamSlice::eraseAt(uint64_t home, const Key &key)
{
    const unsigned reach = bucket(home).reach();
    for (unsigned d = 0; d <= reach; ++d) {
        const uint64_t row = probeRow(home, d, key);
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!b.slotValid(i) || b.slotKey(i) != key)
                continue;
            b.clearSlot(i);
            b.setUsedCount(b.usedCount() - 1);
            // The home bucket's reach is left unchanged (a conservative
            // over-approximation); adoptRamContents() tightens it.
            --homeDemandPerBucket[home];
            distanceHist.remove(d);
            --recordCount;
            if (d > 0)
                --spilledCount;
            return true;
        }
    }
    return false;
}

unsigned
CaRamSlice::erase(const Key &key)
{
    unsigned removed = 0;
    for (uint64_t home : homeRowsInto(key))
        removed += eraseAt(home, key) ? 1 : 0;
    return removed;
}

uint64_t
CaRamSlice::countMatching(const Key &pattern)
{
    if (pattern.bits() != cfg.logicalKeyBits)
        fatal("pattern width does not match the slice configuration");
    uint64_t matched = 0;
    matcher.pack(pattern, packedKey_);
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        ++accessCount;
        matched += matcher.countMatches(bucket(row), packedKey_);
    }
    return matched;
}

uint64_t
CaRamSlice::updateMatching(const Key &pattern, uint64_t new_data)
{
    if (pattern.bits() != cfg.logicalKeyBits)
        fatal("pattern width does not match the slice configuration");
    if (cfg.dataBits == 0)
        fatal("slice stores no data field to update");
    uint64_t updated = 0;
    matcher.pack(pattern, packedKey_);
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        ++accessCount;
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!matcher.slotMatchesPacked(b, i, packedKey_))
                continue;
            b.writeSlot(i, b.slotKey(i), new_data);
            ++updated;
        }
    }
    return updated;
}

uint64_t
CaRamSlice::ramLoad(uint64_t word_addr) const
{
    return array_.loadWord(word_addr);
}

void
CaRamSlice::ramStore(uint64_t word_addr, uint64_t value)
{
    array_.storeWord(word_addr, value);
}

void
CaRamSlice::adoptRamContents()
{
    homeDemandPerBucket.assign(cfg.rows(), 0);
    distanceHist = Histogram();
    recordCount = 0;
    spilledCount = 0;

    // First pass: fix every row's used count and clear its reach.
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        b.setUsedCount(b.recountUsed());
        b.setReach(0);
    }
    // Second pass: recompute demand, distances and reach from the keys.
    const uint64_t rows = cfg.rows();
    const auto wrap_dist = [rows](uint64_t row, uint64_t home) {
        return static_cast<unsigned>((row + rows - home) % rows);
    };
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!b.slotValid(i))
                continue;
            const Key key = b.slotKey(i);
            uint64_t home = row;
            unsigned dist = 0;
            if (key.fullySpecified() || !cfg.ternary) {
                home = homeRow(key);
                dist = wrap_dist(row, home);
                if (dist > cfg.maxProbeDistance) {
                    warn(strprintf("adopted record at row %llu is beyond "
                                   "the probe limit; treating it as local",
                                   (unsigned long long)row));
                    home = row;
                    dist = 0;
                }
            } else {
                // A duplicated ternary copy: its own row is one of its
                // candidate homes (possibly after probing); attribute it
                // to the nearest candidate.
                unsigned best = cfg.maxProbeDistance + 1;
                for (uint64_t cand : homeRows(key)) {
                    const auto d = wrap_dist(row, cand);
                    if (d < best) {
                        best = d;
                        home = cand;
                    }
                }
                dist = best <= cfg.maxProbeDistance ? best : 0;
            }
            ++homeDemandPerBucket[home];
            distanceHist.add(dist);
            ++recordCount;
            if (dist > 0)
                ++spilledCount;
            BucketView home_bucket = bucket(home);
            home_bucket.setReach(std::max(home_bucket.reach(), dist));
        }
    }
}

LoadStats
CaRamSlice::loadStats() const
{
    LoadStats s;
    s.buckets = cfg.rows();
    s.slotsPerBucket = cfg.slotsPerBucket;
    s.records = recordCount;
    s.spilledRecords = spilledCount;
    s.distance = distanceHist;
    for (uint32_t demand : homeDemandPerBucket) {
        s.homeDemand.add(demand);
        if (demand > cfg.slotsPerBucket)
            ++s.overflowingBuckets;
    }
    return s;
}

Histogram
CaRamSlice::occupancyHistogram() const
{
    // The aux used count lives just past the slots in each row;
    // checkIntegrity() verifies it against the raw array.
    const uint64_t aux_lo =
        static_cast<uint64_t>(cfg.slotsPerBucket) * cfg.slotBits();
    Histogram h;
    for (uint64_t row = 0; row < cfg.rows(); ++row)
        h.add(array_.readBits(row, aux_lo, 16));
    return h;
}

void
CaRamSlice::clear()
{
    array_.clearAll();
    homeDemandPerBucket.assign(cfg.rows(), 0);
    distanceHist = Histogram();
    recordCount = 0;
    spilledCount = 0;
    searchCount = 0;
    accessCount = 0;
}

void
CaRamSlice::checkIntegrity()
{
    uint64_t total = 0;
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        const unsigned recount = b.recountUsed();
        if (recount != b.usedCount())
            panic(strprintf("row %llu: aux used count %u != recount %u",
                            (unsigned long long)row, b.usedCount(),
                            recount));
        total += recount;
    }
    if (total != recordCount)
        panic(strprintf("stored records %llu != tracked count %llu",
                        (unsigned long long)total,
                        (unsigned long long)recordCount));
}

} // namespace caram::core
