#include "core/slice.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/strings.h"
#include "mem/prefetch.h"

namespace caram::core {

namespace {

/** splitmix64 finalizer -- hashes row indices for the ingest row cache
 *  (consecutive rows must not cluster in the open-addressed table). */
inline uint64_t
mixRow(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Seqlock stripe count for @p rows: next power of two, capped. */
uint64_t
seqStripes(uint64_t rows)
{
    constexpr uint64_t kMaxStripes = uint64_t{1} << 16;
    return std::min(std::bit_ceil(rows), kMaxStripes);
}

/** CARAM_SEQLOCK_TEAR: inject a snapshot retry every Nth row copy. */
unsigned
envTornReadEvery()
{
    const char *env = std::getenv("CARAM_SEQLOCK_TEAR");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (!end || *end != '\0' || v > ~0u) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn(strprintf("ignoring invalid CARAM_SEQLOCK_TEAR=%s", env));
        return 0;
    }
    return static_cast<unsigned>(v);
}

} // namespace

CaRamSlice::RowWriteGuard::RowWriteGuard(CaRamSlice &s, uint64_t row)
    : seq_(s.rowSeqs_[row & s.seqMask_].v)
{
    // Every store that can change a lookup's outcome runs inside a row
    // writer section, so the guard is also the single collection point
    // for the result cache's dirty-region accounting.
    s.noteRowDirty(row);
    // Relaxed increment then release fence: the fence keeps the data
    // stores below the odd sequence value, so a reader that starts its
    // snapshot after loading an even sequence and still observes a new
    // data word is guaranteed to see the odd (or advanced) sequence on
    // its validation re-read.
    seq_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
}

CaRamSlice::RowWriteGuard::~RowWriteGuard()
{
    seq_.fetch_add(1, std::memory_order_release);
}

CaRamSlice::AllRowsWriteGuard::AllRowsWriteGuard(CaRamSlice &s) : slice_(s)
{
    // Whole-array rewrite: every cache region is dirty.
    slice_.dirtyRegions_.store(~uint64_t{0}, std::memory_order_relaxed);
    for (RowSeq &rs : slice_.rowSeqs_)
        rs.v.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
}

CaRamSlice::AllRowsWriteGuard::~AllRowsWriteGuard()
{
    for (RowSeq &rs : slice_.rowSeqs_)
        rs.v.fetch_add(1, std::memory_order_release);
}

CaRamSlice::ScratchUse::ScratchUse(const CaRamSlice &s) : slice_(s)
{
    if (slice_.scratchGuard_.fetch_add(1, std::memory_order_acq_rel) != 0)
        panic("concurrent use of per-slice scratch: shard workers must "
              "use packSearchKey/candidateHomes/searchRows with "
              "shard-local scratch, never search/searchBatch/erase");
}

CaRamSlice::ScratchUse::~ScratchUse()
{
    slice_.scratchGuard_.fetch_sub(1, std::memory_order_acq_rel);
}

CaRamSlice::CaRamSlice(const SliceConfig &config,
                       std::unique_ptr<hash::IndexGenerator> index_gen)
    : cfg(config),
      idxGen(std::move(index_gen)),
      array_(config.rows(), config.storageRowBits()),
      matcher(cfg),
      rowSeqs_(seqStripes(config.rows())),
      seqMask_(seqStripes(config.rows()) - 1),
      tearEvery_(envTornReadEvery())
{
    cfg.validate();
    if (!idxGen)
        fatal("slice requires an index generator");
    if (idxGen->rowCount() != cfg.rows())
        fatal(strprintf("index generator addresses %llu rows but the "
                        "slice has %llu",
                        (unsigned long long)idxGen->rowCount(),
                        (unsigned long long)cfg.rows()));
    homeDemandPerBucket.assign(cfg.rows(), 0);
    filter_.reset(cfg.rows());
    // Region shift: the highest row index must map below kCacheRegions.
    // Computed from bit_width so non-power-of-two row counts
    // (SliceConfig::rowOverride) land in range too.
    const unsigned top_bits =
        static_cast<unsigned>(std::bit_width(cfg.rows() - 1));
    cacheRegionShift_ = top_bits > 6 ? top_bits - 6 : 0;
}

uint64_t
CaRamSlice::homeRow(const Key &key) const
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    return idxGen->index(key.valueWords(), key.bits());
}

std::vector<uint64_t>
CaRamSlice::homeRows(const Key &key) const
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    std::vector<uint64_t> homes;
    idxGen->candidateIndices(key.valueWords(), key.careWords(), key.bits(),
                             homes);
    return homes;
}

const std::vector<uint64_t> &
CaRamSlice::homeRowsInto(const Key &key)
{
    if (key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    homesScratch.clear();
    // Fully specified keys (the common lookup traffic) have exactly one
    // candidate: skip the per-tap care scan of candidateIndices.
    if (key.fullySpecified())
        homesScratch.push_back(idxGen->index(key.valueWords(), key.bits()));
    else
        idxGen->candidateIndices(key.valueWords(), key.careWords(),
                                 key.bits(), homesScratch);
    return homesScratch;
}

uint64_t
CaRamSlice::searchRegionMask(const Key &search_key,
                             std::vector<uint64_t> &scratch)
{
    if (search_key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    // The FULL candidate home set, before any pre-filter pruning: a
    // pruned home that later gains a matching record must still
    // invalidate this lookup's cached entry, and its home row is where
    // that insert writes (slot or reach/aux word).
    scratch.clear();
    if (search_key.fullySpecified()) {
        scratch.push_back(
            idxGen->index(search_key.valueWords(), search_key.bits()));
    } else {
        idxGen->candidateIndices(search_key.valueWords(),
                                 search_key.careWords(),
                                 search_key.bits(), scratch);
    }
    // Cost bound: a lookup wide enough to enumerate more rows than
    // this is stamped with full coverage instead (strictly more
    // conservative, never wrong).
    constexpr std::size_t kMaxCoveredRows = 128;
    if (scratch.size() > kMaxCoveredRows)
        return ~uint64_t{0};
    uint64_t mask = 0;
    std::size_t covered = scratch.size();
    for (const uint64_t home : scratch) {
        // The home row itself is always covered: a reach extension
        // beyond today's chain writes the home's aux word, so a future
        // record this lookup could match always dirties a covered
        // region even when it lands outside the current chain.
        mask |= cacheRegionBit(home);
        const unsigned reach = bucket(home).reach();
        covered += reach;
        if (covered > kMaxCoveredRows)
            return ~uint64_t{0};
        for (unsigned d = 1; d <= reach; ++d)
            mask |= cacheRegionBit(probeRow(home, d, search_key));
    }
    return mask;
}

uint64_t
CaRamSlice::probeRow(uint64_t home, unsigned d, const Key &key) const
{
    if (d == 0)
        return home;
    const uint64_t rows = cfg.rows();
    switch (cfg.probe) {
      case ProbePolicy::None:
        panic("probing disabled but a nonzero distance was requested");
      case ProbePolicy::Linear:
        return (home + d) % rows;
      case ProbePolicy::SecondHash: {
        // A fixed odd stride derived from a second (xor-fold) hash of
        // the key; odd strides cycle through the power-of-two row space
        // (validate() rejects SecondHash on non-power-of-two rows).
        uint64_t h = 0;
        for (uint64_t w : key.valueWords())
            h ^= w;
        h ^= h >> cfg.indexBits;
        const uint64_t step = (h & (rows - 1)) | 1;
        return (home + d * step) & (rows - 1);
      }
    }
    panic("unreachable probe policy");
}

InsertResult
CaRamSlice::insertAt(uint64_t home_row, const Record &record)
{
    InsertResult result;
    result.homeRow = home_row;
    const unsigned max_d =
        cfg.probe == ProbePolicy::None ? 0 : cfg.maxProbeDistance;
    for (unsigned d = 0; d <= max_d; ++d) {
        const uint64_t row = probeRow(home_row, d, record.key);
        BucketView b = bucket(row);
        // Fast path: with insert-only workloads slots fill in order, so
        // the aux used count points at the first free slot.
        int slot = -1;
        const unsigned used = b.usedCount();
        if (used < cfg.slotsPerBucket && !b.slotValid(used))
            slot = static_cast<int>(used);
        else
            slot = b.firstFreeSlot();
        if (slot < 0)
            continue;
        {
            const RowWriteGuard wg(*this, row);
            b.writeSlot(static_cast<unsigned>(slot), record.key,
                        record.data);
            b.setUsedCount(b.usedCount() + 1);
            filter_.add(row, record.key);
        }
        // Separate guard scope: home_row may share the placed row's
        // seqlock stripe, and guards must not nest (see RowWriteGuard).
        {
            BucketView home = bucket(home_row);
            const RowWriteGuard wg(*this, home_row);
            const unsigned reach = std::max(home.reach(), d);
            home.setReach(reach);
            filter_.setReach(home_row, reach);
        }
        ++homeDemandPerBucket[home_row];
        distanceHist.add(d);
        ++recordCount;
        if (d > 0)
            ++spilledCount;
        result.ok = true;
        result.placedRow = row;
        result.slot = static_cast<unsigned>(slot);
        result.distance = d;
        return result;
    }
    return result; // ok == false: no space within the probe limit
}

void
CaRamSlice::removePlacement(const InsertResult &placement)
{
    if (!placement.ok)
        panic("cannot remove a failed placement");
    BucketView b = bucket(placement.placedRow);
    if (!b.slotValid(placement.slot))
        panic("placement slot is no longer valid");
    {
        const RowWriteGuard wg(*this, placement.placedRow);
        // The placement carries no key: read it back before the clear
        // so the filter's counters can be lowered for the right key.
        filter_.remove(placement.placedRow, b.slotKey(placement.slot));
        b.clearSlot(placement.slot);
        b.setUsedCount(b.usedCount() - 1);
    }
    --homeDemandPerBucket[placement.homeRow];
    distanceHist.remove(placement.distance);
    --recordCount;
    if (placement.distance > 0)
        --spilledCount;
}

InsertSummary
CaRamSlice::insert(const Record &record)
{
    InsertSummary summary;
    const auto homes = homeRows(record.key);
    summary.copies = static_cast<unsigned>(homes.size());
    for (uint64_t home : homes) {
        InsertResult r = insertAt(home, record);
        if (!r.ok) {
            // All-or-nothing: roll back exactly the copies this call
            // placed (an identical pre-existing record is untouched).
            for (const InsertResult &placed : summary.placements)
                removePlacement(placed);
            summary.ok = false;
            summary.placements.clear();
            return summary;
        }
        summary.maxDistance = std::max(summary.maxDistance, r.distance);
        summary.placements.push_back(r);
    }
    summary.ok = true;
    return summary;
}

InsertBatchSummary
CaRamSlice::insertBatchChunk(const Record *records, unsigned n,
                             InsertOutcome *outcomes)
{
    // Two phases.  *Simulate*: replay the serial insert() decisions in
    // submission order against a row cache -- each distinct row is
    // fetched once, and every slot choice, aux update, probe and
    // rollback is resolved against the cached state, so the decisions
    // are exactly the serial ones.  *Apply*: write the simulated
    // placements row-at-a-time (sorted by row, submission order within
    // a row) and patch each changed row's aux field once.  The final
    // array is bit-identical to the serial loop -- including the
    // key/data residue and unrestored reach a rolled-back insert()
    // leaves behind -- while a row shared by many records is fetched
    // and written back once instead of once per record.
    const ScratchUse guard(*this);
    InsertBatchSummary sum;
    auto &ig = ingest_;
    const unsigned slots = cfg.slotsPerBucket;
    const unsigned mask_words = (slots + 63) / 64;
    const unsigned max_d =
        cfg.probe == ProbePolicy::None ? 0 : cfg.maxProbeDistance;

    ig.row.clear();
    ig.used.clear();
    ig.reach.clear();
    ig.usedAtFetch.clear();
    ig.reachAtFetch.clear();
    ig.dirty.clear();
    ig.valid.clear();
    ig.placements.clear();
    if (ig.table.size() < 1024)
        ig.table.assign(1024, -1);
    else
        std::fill(ig.table.begin(), ig.table.end(), -1);

    // Software-prefetch pipeline: the chunk's home-row addresses are
    // all computable before any row is needed (one hash per record, no
    // memory touch), so the simulate loop below runs a bounded
    // lookahead of prefetches ahead of itself -- the DRAM misses
    // overlap instead of serializing behind one another (the
    // record-at-a-time path's dependent-miss chain).  The lookahead is
    // kept near the core's outstanding-miss capacity; prefetching the
    // whole chunk up front would just evict its own tail.
    constexpr unsigned kPrefetchAhead = 16;
    constexpr uint64_t kNoPrefetch = ~uint64_t{0};
    const uint64_t row_bytes = array_.wordsPerRow() * 8;
    const uint64_t pf_bytes = std::min<uint64_t>(row_bytes, 256);
    const uint64_t aux_byte =
        static_cast<uint64_t>(slots) * cfg.slotBits() / 8;
    ig.pfRow.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        const Key &key = records[i].key;
        ig.pfRow[i] =
            key.bits() == cfg.logicalKeyBits && key.fullySpecified()
                ? idxGen->index(key.valueWords(), key.bits())
                : kNoPrefetch;
    }
    auto prefetchHome = [&](unsigned i) {
        if (i >= n || ig.pfRow[i] == kNoPrefetch)
            return;
        const uint64_t *base = array_.rowData(ig.pfRow[i]);
        mem::prefetchSpan(base, pf_bytes);
        if (aux_byte >= pf_bytes)
            mem::prefetchRead(reinterpret_cast<const char *>(base) +
                              aux_byte);
    };
    for (unsigned i = 0; i < kPrefetchAhead && i < n; ++i)
        prefetchHome(i);

    auto rehash = [&ig] {
        ig.table.assign(ig.table.size() * 2, -1);
        const uint64_t mask = ig.table.size() - 1;
        for (std::size_t e = 0; e < ig.row.size(); ++e) {
            uint64_t pos = mixRow(ig.row[e]) & mask;
            while (ig.table[pos] >= 0)
                pos = (pos + 1) & mask;
            ig.table[pos] = static_cast<int32_t>(e);
        }
    };
    // Cache entry of @p row, fetching the row (aux + valid bits) on
    // first touch.
    auto touch = [&](uint64_t row) -> uint32_t {
        uint64_t mask = ig.table.size() - 1;
        uint64_t pos = mixRow(row) & mask;
        while (ig.table[pos] >= 0) {
            const auto e = static_cast<uint32_t>(ig.table[pos]);
            if (ig.row[e] == row)
                return e;
            pos = (pos + 1) & mask;
        }
        const auto e = static_cast<uint32_t>(ig.row.size());
        BucketView b = bucket(row);
        ig.row.push_back(row);
        ig.used.push_back(static_cast<uint16_t>(b.usedCount()));
        ig.reach.push_back(static_cast<uint16_t>(b.reach()));
        ig.usedAtFetch.push_back(ig.used.back());
        ig.reachAtFetch.push_back(ig.reach.back());
        ig.dirty.push_back(0);
        for (unsigned w = 0; w < mask_words; ++w) {
            uint64_t bits = 0;
            const unsigned lim = std::min(slots - w * 64, 64u);
            for (unsigned s = 0; s < lim; ++s)
                bits |= uint64_t{b.slotValid(w * 64 + s)} << s;
            ig.valid.push_back(bits);
        }
        ig.table[pos] = static_cast<int32_t>(e);
        if ((ig.row.size() + 1) * 2 > ig.table.size())
            rehash();
        return e;
    };
    auto validBit = [&ig, mask_words](uint32_t e, unsigned s) {
        return ((ig.valid[e * mask_words + s / 64] >> (s % 64)) & 1) != 0;
    };
    auto firstFree = [&ig, mask_words, slots](uint32_t e) -> int {
        for (unsigned w = 0; w < mask_words; ++w) {
            const unsigned lim = std::min(slots - w * 64, 64u);
            uint64_t free_bits = ~ig.valid[e * mask_words + w];
            if (lim < 64)
                free_bits &= maskBits(lim);
            if (free_bits)
                return static_cast<int>(w * 64 +
                                        std::countr_zero(free_bits));
        }
        return -1;
    };

    // Simulate, in submission order.
    for (unsigned i = 0; i < n; ++i) {
        prefetchHome(i + kPrefetchAhead);
        const Record &rec = records[i];
        const auto &homes = homeRowsInto(rec.key);
        const auto copies = static_cast<unsigned>(homes.size());
        if (copies > 1)
            ++sum.multiHomeRecords;
        const std::size_t first_placement = ig.placements.size();
        bool ok = true;
        unsigned max_dist = 0;
        for (uint64_t home : homes) {
            bool placed = false;
            uint32_t home_entry = 0;
            for (unsigned d = 0; d <= max_d; ++d) {
                const uint64_t prow = probeRow(home, d, rec.key);
                const uint32_t e = touch(prow);
                if (d == 0)
                    home_entry = e;
                // Serial reference cost: insertAt() reads every probed
                // row, then writes the placed slot's row and -- when
                // the record spilled -- the home row's aux separately.
                ++sum.serialRowFetches;
                const unsigned used = ig.used[e];
                int slot = -1;
                if (used < slots && !validBit(e, used))
                    slot = static_cast<int>(used);
                else
                    slot = firstFree(e);
                if (slot < 0)
                    continue;
                ig.valid[e * mask_words + slot / 64] |=
                    uint64_t{1} << (slot % 64);
                ++ig.used[e];
                ig.dirty[e] = 1;
                ig.reach[home_entry] = std::max(
                    ig.reach[home_entry], static_cast<uint16_t>(d));
                ig.placements.push_back({i, static_cast<uint32_t>(slot),
                                         e, home_entry, d, 0});
                sum.serialRowWritebacks += d == 0 ? 1 : 2;
                max_dist = std::max(max_dist, d);
                placed = true;
                break;
            }
            if (!placed) {
                // All-or-nothing rollback, exactly as insert(): the
                // copies this record placed become *dead* -- their
                // key/data bits are still written (then invalidated)
                // and the home reach they raised stays raised.
                ok = false;
                for (std::size_t p = first_placement;
                     p < ig.placements.size(); ++p) {
                    auto &pl = ig.placements[p];
                    pl.dead = 1;
                    ig.valid[pl.entry * mask_words + pl.slot / 64] &=
                        ~(uint64_t{1} << (pl.slot % 64));
                    --ig.used[pl.entry];
                    // removePlacement(): one row read, one writeback.
                    ++sum.serialRowFetches;
                    ++sum.serialRowWritebacks;
                }
                break;
            }
        }
        if (ok)
            ++sum.accepted;
        else
            ++sum.failed;
        if (outcomes) {
            outcomes[i].ok = ok;
            outcomes[i].copies = copies;
            outcomes[i].maxDistance = max_dist;
        }
    }

    // Apply row-at-a-time: placements sorted by (row, submission seq),
    // so several writes to one slot (a dead placement reused by a later
    // record) land in serial order.
    ig.applyOrder.clear();
    for (std::size_t p = 0; p < ig.placements.size(); ++p)
        ig.applyOrder.emplace_back(ig.row[ig.placements[p].entry],
                                   static_cast<uint32_t>(p));
    std::sort(ig.applyOrder.begin(), ig.applyOrder.end());
    for (const auto &[row, pidx] : ig.applyOrder) {
        const auto &pl = ig.placements[pidx];
        const Record &rec = records[pl.rec];
        BucketView b = bucket(row);
        {
            const RowWriteGuard wg(*this, row);
            b.writeSlot(pl.slot, rec.key, rec.data);
            // The filter replays the serial order: insert() added the
            // copy, and -- for dead placements -- removePlacement()
            // took it back out (sticky counter saturation makes the
            // add/remove pair idempotent-at-worst, never unsound).
            filter_.add(row, rec.key);
            if (pl.dead) {
                b.clearSlot(pl.slot);
                filter_.remove(row, rec.key);
            }
        }
        if (pl.dead) {
            // Serial rollback adds the distance sample and then removes
            // it; Histogram::remove never shrinks the bin vector, so
            // replay the pair to keep loadStats() bins bit-identical.
            distanceHist.add(pl.d);
            distanceHist.remove(pl.d);
            continue;
        }
        ++homeDemandPerBucket[ig.row[pl.homeEntry]];
        distanceHist.add(pl.d);
        ++recordCount;
        if (pl.d > 0) {
            ++spilledCount;
            ++sum.spilledPlacements;
        }
    }
    sum.rowFetches = ig.row.size();
    for (std::size_t e = 0; e < ig.row.size(); ++e) {
        const bool aux_changed = ig.used[e] != ig.usedAtFetch[e] ||
                                 ig.reach[e] != ig.reachAtFetch[e];
        if (aux_changed) {
            BucketView b = bucket(ig.row[e]);
            const RowWriteGuard wg(*this, ig.row[e]);
            b.setUsedCount(ig.used[e]);
            b.setReach(ig.reach[e]);
            filter_.setReach(ig.row[e], ig.reach[e]);
        }
        if (aux_changed || ig.dirty[e])
            ++sum.rowWritebacks;
    }
    return sum;
}

InsertBatchSummary
CaRamSlice::insertBatch(const Record *records, unsigned n,
                        InsertOutcome *outcomes)
{
    InsertBatchSummary sum;
    for (unsigned off = 0; off < n; off += kMaxIngestBatch) {
        const unsigned chunk = std::min(kMaxIngestBatch, n - off);
        sum.merge(insertBatchChunk(records + off, chunk,
                                   outcomes ? outcomes + off : nullptr));
    }
    return sum;
}

InsertBatchSummary
CaRamSlice::insertBatch(std::span<const Record> records,
                        InsertOutcome *outcomes)
{
    return insertBatch(records.data(),
                       static_cast<unsigned>(records.size()), outcomes);
}

bool
CaRamSlice::searchChain(uint64_t home,
                        const MatchProcessor::PackedKey &packed,
                        SearchResult &best, std::vector<uint64_t> *trace)
{
    // With the pre-filter consulted, the chain length comes from the
    // filter's reach mirror (no home-row touch) and provably-miss rows
    // are skipped before the fetch and the bucketsAccessed charge --
    // only the skip changes; a row that is fetched is matched exactly
    // as before, so hit payloads and non-skipped accounting are
    // bit-identical to the unfiltered walk.
    const bool pf = prefilterActive();
    uint64_t sig = 0;
    bool sig_usable = false;
    unsigned reach;
    if (pf) {
        sig_usable = packed.key.fullySpecified();
        sig = RowPrefilter::signatureOf(packed.key);
        reach = filter_.reach(home);
    } else {
        reach = bucket(home).reach();
    }
    for (unsigned d = 0; d <= reach; ++d) {
        const uint64_t row = probeRow(home, d, packed.key);
        if (pf) {
            prefilterProbes_.fetch_add(1, std::memory_order_relaxed);
            if (!filter_.mayMatch(row, sig, sig_usable)) {
                prefilterSkips_.fetch_add(1,
                                          std::memory_order_relaxed);
                continue;
            }
        }
        ++best.bucketsAccessed;
        if (trace)
            trace->push_back(row);
        BucketView b = bucket(row);
        const BucketMatch m = cfg.lpm
            ? matcher.searchBucketBestPacked(b, packed)
            : matcher.searchBucketPacked(b, packed);
        if (!m.hit)
            continue;
        if (!cfg.lpm) {
            best.hit = true;
            best.multipleMatch = m.multipleMatch;
            best.row = row;
            best.slot = m.slot;
            best.data = m.data;
            best.key = m.key;
            return true;
        }
        // LPM: keep the match with the most specified bits across the
        // whole probe chain (spilled entries are the lower-priority
        // ones, but a spilled long prefix must still win).
        const unsigned pop = m.key.carePopcount();
        if (!best.hit || pop > best.key.carePopcount()) {
            best.hit = true;
            best.multipleMatch = m.multipleMatch;
            best.row = row;
            best.slot = m.slot;
            best.data = m.data;
            best.key = m.key;
        }
    }
    return false;
}

SearchResult
CaRamSlice::search(const Key &search_key)
{
    const ScratchUse guard(*this);
    ++searchCount;
    SearchResult best;
    matcher.pack(search_key, packedKey_);
    // A search key with don't-care bits in hash positions must access
    // every candidate bucket (section 4, "Discussions").
    for (uint64_t home : homeRowsInto(search_key)) {
        if (searchChain(home, packedKey_, best, nullptr))
            break; // non-LPM first hit
    }
    accessCount += best.bucketsAccessed;
    return best;
}

SearchResult
CaRamSlice::searchTraced(const Key &search_key,
                         std::vector<uint64_t> &rows_accessed)
{
    const ScratchUse guard(*this);
    ++searchCount;
    SearchResult best;
    matcher.pack(search_key, packedKey_);
    for (uint64_t home : homeRowsInto(search_key)) {
        if (searchChain(home, packedKey_, best, &rows_accessed))
            break;
    }
    accessCount += best.bucketsAccessed;
    return best;
}

void
CaRamSlice::packSearchKey(const Key &search_key,
                          MatchProcessor::PackedKey &out) const
{
    if (search_key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    matcher.pack(search_key, out);
}

void
CaRamSlice::candidateHomes(const Key &search_key,
                           std::vector<uint64_t> &out) const
{
    if (search_key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    out.clear();
    // Same fast path and ordering as homeRowsInto().
    if (search_key.fullySpecified())
        out.push_back(idxGen->index(search_key.valueWords(),
                                    search_key.bits()));
    else
        idxGen->candidateIndices(search_key.valueWords(),
                                 search_key.careWords(),
                                 search_key.bits(), out);
}

void
CaRamSlice::prefilterPruneHomes(const Key &search_key,
                                std::vector<uint64_t> &homes)
{
    if (!prefilterActive())
        return;
    const uint64_t sig = RowPrefilter::signatureOf(search_key);
    const bool sig_usable = search_key.fullySpecified();
    std::size_t w = 0;
    for (const uint64_t home : homes) {
        unsigned reach = 0;
        const bool may =
            filter_.consultHome(home, sig, sig_usable, reach);
        if (!may && reach == 0) {
            // The chain is this single row and it provably cannot
            // match: a shard walk would have consulted it once and
            // skipped -- charge exactly that, and drop the home so no
            // sub-task is enqueued for it.
            prefilterProbes_.fetch_add(1, std::memory_order_relaxed);
            prefilterSkips_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        homes[w++] = home;
    }
    homes.resize(w);
}

SearchResult
CaRamSlice::searchRows(const MatchProcessor::PackedKey &packed,
                       const uint64_t *homes, unsigned n)
{
    SearchResult best;
    for (unsigned i = 0; i < n; ++i) {
        if (searchChain(homes[i], packed, best, nullptr))
            break; // non-LPM first hit within this shard
    }
    return best;
}

SearchResult
CaRamSlice::mergeShardResults(const SearchResult *shards, unsigned n,
                              bool lpm)
{
    SearchResult merged;
    unsigned accesses = 0;
    for (unsigned i = 0; i < n; ++i) {
        const SearchResult &s = shards[i];
        accesses += s.bucketsAccessed;
        if (!lpm) {
            // Serial early exit: the first hitting shard is where the
            // serial chain would have stopped -- its bucketsAccessed
            // already ends at the hit row, and later shards' walks are
            // speculative work the serial cost never pays.
            if (s.hit) {
                merged = s;
                merged.bucketsAccessed = accesses;
                return merged;
            }
            continue;
        }
        // LPM walks everything; first-max-wins across shards in home
        // order, matching searchChain()'s strictly-greater rule.
        if (s.hit && (!merged.hit ||
                      s.key.carePopcount() > merged.key.carePopcount())) {
            merged = s;
        }
    }
    merged.bucketsAccessed = accesses;
    return merged;
}

void
CaRamSlice::noteFanoutSearch(unsigned buckets_accessed)
{
    ++searchCount;
    accessCount += buckets_accessed;
}

bool
CaRamSlice::tearPending() const
{
    const unsigned every = tearEvery_.load(std::memory_order_relaxed);
    if (every == 0)
        return false;
    return snapshotTick_.fetch_add(1, std::memory_order_relaxed) % every ==
           every - 1;
}

void
CaRamSlice::setTornReadInjection(unsigned every)
{
    tearEvery_.store(every, std::memory_order_relaxed);
}

uint64_t
CaRamSlice::tornReadRetries() const
{
    return tornRetries_.load(std::memory_order_relaxed);
}

void
CaRamSlice::snapshotRowConcurrent(uint64_t row, uint64_t *dst) const
{
    const std::atomic<uint64_t> &seq = rowSeqs_[row & seqMask_].v;
    // Injection fires at most once per snapshot, or every==1 would
    // retry forever.
    bool inject = tearPending();
    for (;;) {
        const uint64_t s1 = seq.load(std::memory_order_acquire);
        if (s1 & 1)
            continue; // writer mid-row: wait for the even value
        array_.snapshotRowInto(row, dst);
        // Acquire fence before the validation re-read: if any copied
        // word came from inside or after a write section, the re-read
        // is guaranteed to observe that writer's odd/advanced sequence.
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint64_t s2 = seq.load(std::memory_order_relaxed);
        if (s1 == s2) {
            if (!inject)
                return;
            inject = false;
        }
        tornRetries_.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
CaRamSlice::prefilterMayMatchConcurrent(uint64_t row, uint64_t sig,
                                        bool sig_usable) const
{
    // Same validation shape as snapshotRowConcurrent(), but a failed
    // validation declines to prune instead of retrying: every filter
    // write happens inside the row's writer section, so a quiescent
    // stripe across the read means the words form a published filter
    // state, whose verdict is sound (one-sided error, DESIGN.md 4e).
    const std::atomic<uint64_t> &seq = rowSeqs_[row & seqMask_].v;
    const uint64_t s1 = seq.load(std::memory_order_acquire);
    if (s1 & 1)
        return true; // writer mid-row
    const bool may = filter_.mayMatch(row, sig, sig_usable);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t s2 = seq.load(std::memory_order_relaxed);
    return s1 != s2 || may;
}

bool
CaRamSlice::prefilterConsultHomeConcurrent(uint64_t home, uint64_t sig,
                                           bool sig_usable,
                                           unsigned &reach_out,
                                           bool &valid) const
{
    const std::atomic<uint64_t> &seq = rowSeqs_[home & seqMask_].v;
    const uint64_t s1 = seq.load(std::memory_order_acquire);
    valid = false;
    if (s1 & 1)
        return true;
    const bool may =
        filter_.consultHome(home, sig, sig_usable, reach_out);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t s2 = seq.load(std::memory_order_relaxed);
    if (s1 != s2)
        return true;
    valid = true;
    return may;
}

SearchResult
CaRamSlice::searchConcurrent(const Key &search_key,
                             ConcurrentSearchScratch &scratch) const
{
    if (search_key.bits() != cfg.logicalKeyBits)
        fatal("key width does not match the slice configuration");
    if (!scratch.row || scratch.rowBits != cfg.storageRowBits()) {
        scratch.row =
            std::make_unique<mem::MemoryArray>(1, cfg.storageRowBits());
        scratch.rowBits = cfg.storageRowBits();
    }
    matcher.pack(search_key, scratch.packed);
    candidateHomes(search_key, scratch.homes);

    // Every row the chain touches is matched against the validated
    // snapshot in scratch.row, so the existing matcher and aux-decode
    // paths run unchanged over row 0 of the private one-row array.
    uint64_t *dst = scratch.row->rowData(0);
    BucketView sb(*scratch.row, cfg, 0);
    const bool pf = prefilterActive();
    uint64_t sig = 0;
    bool sig_usable = false;
    if (pf) {
        sig = RowPrefilter::signatureOf(search_key);
        sig_usable = search_key.fullySpecified();
    }
    SearchResult best;
    for (uint64_t home : scratch.homes) {
        // A validated home consult that fails skips the home row's
        // snapshot and walks the rest of the chain with the mirrored
        // reach (which only ever grows outside whole-array rewrites,
        // and those hold every stripe odd -- the consult declines).
        // Any failed validation falls back to the snapshot path.
        unsigned reach;
        bool home_skipped = false;
        bool consulted = false;
        if (pf) {
            bool valid = false;
            prefilterProbes_.fetch_add(1, std::memory_order_relaxed);
            const bool may = prefilterConsultHomeConcurrent(
                home, sig, sig_usable, reach, valid);
            if (valid && !may) {
                prefilterSkips_.fetch_add(1,
                                          std::memory_order_relaxed);
                home_skipped = true;
                consulted = true;
            }
        }
        if (!consulted) {
            // One snapshot serves both the reach read and the d == 0
            // match, so the home row's observation is internally
            // consistent (the serial path reads the row twice;
            // between-mutation states are indistinguishable
            // row-locally).
            snapshotRowConcurrent(home, dst);
            reach = sb.reach();
        }
        bool early_exit = false;
        for (unsigned d = 0; d <= reach; ++d) {
            if (d == 0 && home_skipped)
                continue;
            if (d > 0) {
                const uint64_t row = probeRow(home, d, search_key);
                if (pf) {
                    prefilterProbes_.fetch_add(
                        1, std::memory_order_relaxed);
                    if (!prefilterMayMatchConcurrent(row, sig,
                                                     sig_usable)) {
                        prefilterSkips_.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                }
                snapshotRowConcurrent(row, dst);
            }
            ++best.bucketsAccessed;
            const BucketMatch m = cfg.lpm
                ? matcher.searchBucketBestPacked(sb, scratch.packed)
                : matcher.searchBucketPacked(sb, scratch.packed);
            if (!m.hit)
                continue;
            if (!cfg.lpm) {
                best.hit = true;
                best.multipleMatch = m.multipleMatch;
                best.row = probeRow(home, d, search_key);
                best.slot = m.slot;
                best.data = m.data;
                best.key = m.key;
                early_exit = true;
                break;
            }
            const unsigned pop = m.key.carePopcount();
            if (!best.hit || pop > best.key.carePopcount()) {
                best.hit = true;
                best.multipleMatch = m.multipleMatch;
                best.row = probeRow(home, d, search_key);
                best.slot = m.slot;
                best.data = m.data;
                best.key = m.key;
            }
        }
        if (early_exit)
            break;
    }
    return best;
}

uint64_t
CaRamSlice::searchGroupChain(uint64_t home, unsigned reach,
                             const uint32_t *idx, unsigned group_size,
                             SearchResult *out, bool pf)
{
    auto &sc = batch_;
    const MatchProcessor::PackedKey *ptrs[kernels::kMaxGroupKeys];
    for (unsigned k = 0; k < group_size; ++k)
        ptrs[k] = &sc.packed[idx[k]];
    matcher.packGroup(ptrs, group_size, sc.group);

    // Pre-filter each live lane against the shared row: a lane that
    // fails is exactly the key a serial filtered searchChain() would
    // have skipped the row for (no bucketsAccessed charge, no match
    // attempt), and the row is fetched only when at least one lane
    // still needs it -- whole groups skip guaranteed-miss rows.
    auto passMask = [&](uint64_t row, uint32_t lanes) -> uint32_t {
        if (!pf)
            return lanes;
        uint32_t pass = lanes;
        for (uint32_t m = lanes; m; m &= m - 1) {
            const unsigned k =
                static_cast<unsigned>(std::countr_zero(m));
            prefilterProbes_.fetch_add(1, std::memory_order_relaxed);
            if (!filter_.mayMatch(row, sc.sig[idx[k]],
                                  sc.sigUsable[idx[k]] != 0)) {
                prefilterSkips_.fetch_add(1,
                                          std::memory_order_relaxed);
                pass &= ~(1u << k);
            }
        }
        return pass;
    };

    uint64_t fetches = 0;
    if (!cfg.lpm) {
        // Keys leave the group on their first hit, exactly where the
        // serial chain walk would stop counting accesses for them.
        uint32_t alive = sc.group.keyMask;
        for (unsigned d = 0; d <= reach && alive; ++d) {
            // The probe row is key-independent on this path (d == 0, or
            // Linear probing) -- any group member's key works.
            const uint64_t row = probeRow(home, d, ptrs[0]->key);
            const uint32_t pass = passMask(row, alive);
            if (!pass)
                continue;
            ++fetches;
            for (uint32_t m = pass; m; m &= m - 1)
                ++out[idx[std::countr_zero(m)]].bucketsAccessed;
            matcher.searchBucketKeys(bucket(row), sc.group, pass,
                                     sc.groupOut.data());
            for (uint32_t m = pass; m; m &= m - 1) {
                const unsigned k =
                    static_cast<unsigned>(std::countr_zero(m));
                const BucketMatch &bm = sc.groupOut[k];
                if (!bm.hit)
                    continue;
                SearchResult &r = out[idx[k]];
                r.hit = true;
                r.multipleMatch = bm.multipleMatch;
                r.row = row;
                r.slot = bm.slot;
                r.data = bm.data;
                r.key = bm.key;
                alive &= ~(1u << k);
            }
        }
    } else {
        // LPM: every key walks the whole chain, keeping its best match
        // by specified-bit count (same merge as searchChain).
        for (unsigned d = 0; d <= reach; ++d) {
            const uint64_t row = probeRow(home, d, ptrs[0]->key);
            const uint32_t pass = passMask(row, sc.group.keyMask);
            if (!pass)
                continue;
            ++fetches;
            for (uint32_t m = pass; m; m &= m - 1)
                ++out[idx[std::countr_zero(m)]].bucketsAccessed;
            matcher.searchBucketBestKeys(bucket(row), sc.group, pass,
                                         sc.groupOut.data());
            for (uint32_t m = pass; m; m &= m - 1) {
                const unsigned k =
                    static_cast<unsigned>(std::countr_zero(m));
                const BucketMatch &bm = sc.groupOut[k];
                if (!bm.hit)
                    continue;
                SearchResult &r = out[idx[k]];
                const unsigned pop = bm.key.carePopcount();
                if (!r.hit || pop > r.key.carePopcount()) {
                    r.hit = true;
                    r.multipleMatch = bm.multipleMatch;
                    r.row = row;
                    r.slot = bm.slot;
                    r.data = bm.data;
                    r.key = bm.key;
                }
            }
        }
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatchChunk(const Key *const *keys, unsigned n,
                             SearchResult *out)
{
    const ScratchUse guard(*this);
    auto &sc = batch_;
    uint64_t fetches = 0;
    unsigned groupable = 0;
    ++batchChunks_;
    const bool pf = prefilterActive();
    // Prefetch cap: the slot windows a lookup touches first live at the
    // front of the row; very wide rows are not worth the request-buffer
    // pressure.
    const uint64_t pf_bytes =
        std::min<uint64_t>(array_.wordsPerRow() * 8, 512);
    for (unsigned i = 0; i < n; ++i) {
        ++searchCount;
        out[i] = SearchResult{};
        matcher.pack(*keys[i], sc.packed[i]);
        if (pf) {
            // Signatures computed once per key, alongside packing --
            // every row the grouped walk consults reuses them.
            sc.sig[i] = RowPrefilter::signatureOf(*keys[i]);
            sc.sigUsable[i] = keys[i]->fullySpecified() ? 1 : 0;
        }
        const auto &homes = homeRowsInto(*keys[i]);
        if (homes.size() == 1) {
            sc.home[i] = homes[0];
            // The chunk's home rows are all known before any row is
            // matched: prefetching here overlaps the DRAM misses with
            // the remaining packing work and with one another.
            mem::prefetchSpan(array_.rowData(homes[0]), pf_bytes);
            sc.order[groupable++] = i;
            continue;
        }
        // Don't-care bits in hash positions: the key must access every
        // candidate bucket -- serial walk, identical to search().
        for (uint64_t home : homes) {
            if (searchChain(home, sc.packed[i], out[i], nullptr))
                break;
        }
        fetches += out[i].bucketsAccessed;
        accessCount += out[i].bucketsAccessed;
    }

    // Group single-home keys by home bucket; ties keep submission order
    // so a group's first-hit bookkeeping mirrors the serial stream.
    // Bursty streams usually arrive already run-ordered -- an O(n)
    // pre-scan skips the sort then (sc.order is filled in submission
    // order, so ties are already where the sort would leave them).
    bool run_ordered = true;
    for (unsigned j = 1; j < groupable; ++j) {
        if (sc.home[sc.order[j - 1]] > sc.home[sc.order[j]]) {
            run_ordered = false;
            break;
        }
    }
    if (run_ordered)
        ++batchSortsSkipped_;
    else
        std::sort(sc.order.begin(), sc.order.begin() + groupable,
                  [&sc](uint32_t a, uint32_t b) {
                      return sc.home[a] != sc.home[b]
                                 ? sc.home[a] < sc.home[b]
                                 : a < b;
                  });
    unsigned pos = 0;
    while (pos < groupable) {
        const uint64_t home = sc.home[sc.order[pos]];
        unsigned end = pos + 1;
        while (end < groupable && sc.home[sc.order[end]] == home)
            ++end;
        // The filtered serial walk reads reach from the filter mirror
        // (no home-row touch); the grouped walk must match it.
        const unsigned reach =
            pf ? filter_.reach(home) : bucket(home).reach();
        // SecondHash probe rows depend on the key, so a chain that
        // leaves the home bucket cannot be shared.
        const bool shareable =
            cfg.probe != ProbePolicy::SecondHash || reach == 0;
        if (!shareable || end - pos == 1) {
            for (unsigned j = pos; j < end; ++j) {
                const unsigned i = sc.order[j];
                searchChain(home, sc.packed[i], out[i], nullptr);
                fetches += out[i].bucketsAccessed;
                accessCount += out[i].bucketsAccessed;
            }
        } else {
            for (unsigned j = pos; j < end;
                 j += kernels::kMaxGroupKeys) {
                const unsigned gsz = std::min(
                    kernels::kMaxGroupKeys, end - j);
                fetches += searchGroupChain(home, reach,
                                            sc.order.data() + j, gsz,
                                            out, pf);
                for (unsigned k = 0; k < gsz; ++k) {
                    accessCount +=
                        out[sc.order[j + k]].bucketsAccessed;
                }
            }
        }
        pos = end;
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatch(const Key *const *keys, unsigned n,
                        SearchResult *out)
{
    uint64_t fetches = 0;
    for (unsigned off = 0; off < n; off += kMaxBatch) {
        const unsigned chunk = std::min(kMaxBatch, n - off);
        fetches += searchBatchChunk(keys + off, chunk, out + off);
    }
    return fetches;
}

uint64_t
CaRamSlice::searchBatch(std::span<const Key> keys, SearchResult *out)
{
    uint64_t fetches = 0;
    std::array<const Key *, kMaxBatch> ptrs;
    for (std::size_t off = 0; off < keys.size(); off += kMaxBatch) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::size_t>(kMaxBatch, keys.size() - off));
        for (unsigned i = 0; i < chunk; ++i)
            ptrs[i] = &keys[off + i];
        fetches += searchBatchChunk(ptrs.data(), chunk, out + off);
    }
    return fetches;
}

bool
CaRamSlice::eraseAt(uint64_t home, const Key &key)
{
    const unsigned reach = bucket(home).reach();
    for (unsigned d = 0; d <= reach; ++d) {
        const uint64_t row = probeRow(home, d, key);
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!b.slotValid(i) || b.slotKey(i) != key)
                continue;
            {
                const RowWriteGuard wg(*this, row);
                filter_.remove(row, key);
                b.clearSlot(i);
                b.setUsedCount(b.usedCount() - 1);
            }
            // The home bucket's reach is left unchanged (a conservative
            // over-approximation); adoptRamContents() tightens it.
            --homeDemandPerBucket[home];
            distanceHist.remove(d);
            --recordCount;
            if (d > 0)
                --spilledCount;
            return true;
        }
    }
    return false;
}

unsigned
CaRamSlice::erase(const Key &key)
{
    const ScratchUse guard(*this);
    unsigned removed = 0;
    for (uint64_t home : homeRowsInto(key))
        removed += eraseAt(home, key) ? 1 : 0;
    return removed;
}

uint64_t
CaRamSlice::countMatching(const Key &pattern)
{
    if (pattern.bits() != cfg.logicalKeyBits)
        fatal("pattern width does not match the slice configuration");
    const ScratchUse guard(*this);
    uint64_t matched = 0;
    matcher.pack(pattern, packedKey_);
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        ++accessCount;
        matched += matcher.countMatches(bucket(row), packedKey_);
    }
    return matched;
}

uint64_t
CaRamSlice::updateMatching(const Key &pattern, uint64_t new_data)
{
    if (pattern.bits() != cfg.logicalKeyBits)
        fatal("pattern width does not match the slice configuration");
    if (cfg.dataBits == 0)
        fatal("slice stores no data field to update");
    const ScratchUse guard(*this);
    uint64_t updated = 0;
    matcher.pack(pattern, packedKey_);
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        ++accessCount;
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!matcher.slotMatchesPacked(b, i, packedKey_))
                continue;
            {
                const RowWriteGuard wg(*this, row);
                b.writeSlot(i, b.slotKey(i), new_data);
            }
            ++updated;
        }
    }
    return updated;
}

uint64_t
CaRamSlice::ramLoad(uint64_t word_addr) const
{
    return array_.loadWord(word_addr);
}

void
CaRamSlice::ramStore(uint64_t word_addr, uint64_t value)
{
    // Raw stores rewrite row bits behind the filter's back: declare it
    // stale until adoptRamContents()/clear() rebuild it wholesale.
    filter_.suspend();
    const RowWriteGuard wg(*this, word_addr / array_.wordsPerRow());
    array_.storeWord(word_addr, value);
}

void
CaRamSlice::adoptRamContents()
{
    const AllRowsWriteGuard wg(*this);
    homeDemandPerBucket.assign(cfg.rows(), 0);
    distanceHist = Histogram();
    recordCount = 0;
    spilledCount = 0;
    // Wholesale filter rebuild from the adopted bits; also lifts a
    // ramStore() suspension (the only way to lift one).
    filter_.clearAll();

    // First pass: fix every row's used count and clear its reach.
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        b.setUsedCount(b.recountUsed());
        b.setReach(0);
    }
    // Second pass: recompute demand, distances and reach from the keys.
    const uint64_t rows = cfg.rows();
    const auto wrap_dist = [rows](uint64_t row, uint64_t home) {
        return static_cast<unsigned>((row + rows - home) % rows);
    };
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!b.slotValid(i))
                continue;
            const Key key = b.slotKey(i);
            uint64_t home = row;
            unsigned dist = 0;
            if (key.fullySpecified() || !cfg.ternary) {
                home = homeRow(key);
                dist = wrap_dist(row, home);
                if (dist > cfg.maxProbeDistance) {
                    warn(strprintf("adopted record at row %llu is beyond "
                                   "the probe limit; treating it as local",
                                   (unsigned long long)row));
                    home = row;
                    dist = 0;
                }
            } else {
                // A duplicated ternary copy: its own row is one of its
                // candidate homes (possibly after probing); attribute it
                // to the nearest candidate.
                unsigned best = cfg.maxProbeDistance + 1;
                for (uint64_t cand : homeRows(key)) {
                    const auto d = wrap_dist(row, cand);
                    if (d < best) {
                        best = d;
                        home = cand;
                    }
                }
                dist = best <= cfg.maxProbeDistance ? best : 0;
            }
            ++homeDemandPerBucket[home];
            distanceHist.add(dist);
            ++recordCount;
            if (dist > 0)
                ++spilledCount;
            filter_.add(row, key);
            BucketView home_bucket = bucket(home);
            const unsigned reach = std::max(home_bucket.reach(), dist);
            home_bucket.setReach(reach);
            filter_.setReach(home, reach);
        }
    }
}

unsigned
CaRamSlice::maintenanceScanRow(uint64_t row, std::vector<MaintenanceSlot> &out)
{
    out.clear();
    if (row >= cfg.rows())
        panic("maintenance scan beyond the row space");
    BucketView b = bucket(row);
    const unsigned max_d =
        cfg.probe == ProbePolicy::None ? 0 : cfg.maxProbeDistance;
    for (unsigned i = 0; i < b.slots(); ++i) {
        if (!b.slotValid(i))
            continue;
        Key key = b.slotKey(i);
        if (!key.fullySpecified())
            continue;
        const uint64_t home = idxGen->index(key.valueWords(), key.bits());
        unsigned dist = ~0u;
        for (unsigned d = 0; d <= max_d; ++d) {
            if (probeRow(home, d, key) == row) {
                dist = d;
                break;
            }
        }
        // Unattributable copy (RAM-mode store beyond the probe limit):
        // leave it where it is.
        if (dist == ~0u)
            continue;
        const uint64_t data = b.slotData(i);
        out.push_back(MaintenanceSlot{i, Record{std::move(key), data}, home,
                                      dist});
    }
    return static_cast<unsigned>(out.size());
}

bool
CaRamSlice::maintenanceHasCloserSlot(uint64_t home, unsigned distance,
                                     const Key &key)
{
    for (unsigned d = 0; d < distance; ++d) {
        if (bucket(probeRow(home, d, key)).firstFreeSlot() >= 0)
            return true;
    }
    return false;
}

unsigned
CaRamSlice::maintenanceTrimReach(uint64_t home)
{
    if (cfg.probe != ProbePolicy::Linear)
        return 0;
    BucketView home_bucket = bucket(home);
    const unsigned cur = home_bucket.reach();
    if (cur == 0)
        return 0;
    // Walk the (shared, key-independent) linear chain tail-first and
    // keep the furthest distance whose row still holds a record that
    // could belong to @p home.  A copy actually placed from @p home
    // always lists @p home among its candidates, so the recomputed
    // reach never under-sets.
    unsigned new_reach = 0;
    std::vector<uint64_t> cand;
    for (unsigned d = cur; d >= 1 && new_reach == 0; --d) {
        const uint64_t row = (home + d) % cfg.rows();
        BucketView b = bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (!b.slotValid(i))
                continue;
            const Key key = b.slotKey(i);
            if (key.fullySpecified()) {
                if (idxGen->index(key.valueWords(), key.bits()) == home) {
                    new_reach = d;
                    break;
                }
                continue;
            }
            idxGen->candidateIndices(key.valueWords(), key.careWords(),
                                     key.bits(), cand);
            if (std::find(cand.begin(), cand.end(), home) != cand.end()) {
                new_reach = d;
                break;
            }
        }
    }
    if (new_reach >= cur)
        return 0;
    {
        const RowWriteGuard wg(*this, home);
        home_bucket.setReach(new_reach);
        filter_.setReach(home, new_reach);
    }
    return cur - new_reach;
}

LoadStats
CaRamSlice::loadStats() const
{
    LoadStats s;
    s.buckets = cfg.rows();
    s.slotsPerBucket = cfg.slotsPerBucket;
    s.records = recordCount;
    s.spilledRecords = spilledCount;
    s.distance = distanceHist;
    for (uint32_t demand : homeDemandPerBucket) {
        s.homeDemand.add(demand);
        if (demand > cfg.slotsPerBucket)
            ++s.overflowingBuckets;
    }
    return s;
}

Histogram
CaRamSlice::occupancyHistogram() const
{
    // The aux used count lives just past the slots in each row;
    // checkIntegrity() verifies it against the raw array.
    const uint64_t aux_lo =
        static_cast<uint64_t>(cfg.slotsPerBucket) * cfg.slotBits();
    Histogram h;
    for (uint64_t row = 0; row < cfg.rows(); ++row)
        h.add(array_.readBits(row, aux_lo, 16));
    return h;
}

void
CaRamSlice::clear()
{
    const AllRowsWriteGuard wg(*this);
    array_.clearAll();
    filter_.clearAll();
    homeDemandPerBucket.assign(cfg.rows(), 0);
    distanceHist = Histogram();
    recordCount = 0;
    spilledCount = 0;
    searchCount = 0;
    accessCount = 0;
    batchChunks_ = 0;
    batchSortsSkipped_ = 0;
    prefilterProbes_.store(0, std::memory_order_relaxed);
    prefilterSkips_.store(0, std::memory_order_relaxed);
}

void
CaRamSlice::checkIntegrity()
{
    uint64_t total = 0;
    for (uint64_t row = 0; row < cfg.rows(); ++row) {
        BucketView b = bucket(row);
        const unsigned recount = b.recountUsed();
        if (recount != b.usedCount())
            panic(strprintf("row %llu: aux used count %u != recount %u",
                            (unsigned long long)row, b.usedCount(),
                            recount));
        total += recount;
    }
    if (total != recordCount)
        panic(strprintf("stored records %llu != tracked count %llu",
                        (unsigned long long)total,
                        (unsigned long long)recordCount));
}

} // namespace caram::core
