#ifndef CARAM_CORE_RECORD_H_
#define CARAM_CORE_RECORD_H_

/**
 * @file
 * Records and the results of CA-RAM CAM-mode operations.
 */

#include <cstdint>

#include "common/key.h"

namespace caram::core {

/** A searchable record: key plus associated data (section 2.1). */
struct Record
{
    Key key;
    uint64_t data = 0;
};

/** Outcome of a CAM-mode insert. */
struct InsertResult
{
    bool ok = false;       ///< false: no space within the probe limit
    uint64_t homeRow = 0;  ///< bucket selected by the index generator
    uint64_t placedRow = 0;///< bucket the record actually landed in
    unsigned slot = 0;     ///< slot within the placed bucket
    unsigned distance = 0; ///< probe distance (0 = home bucket)
};

/** Outcome of a CAM-mode search. */
struct SearchResult
{
    bool hit = false;
    bool multipleMatch = false; ///< >1 match in the winning bucket
    uint64_t row = 0;           ///< bucket of the winning record
    unsigned slot = 0;          ///< slot of the winning record
    uint64_t data = 0;          ///< stored data of the winner
    Key key;                    ///< stored key of the winner
    unsigned bucketsAccessed = 0; ///< memory accesses this lookup took
};

} // namespace caram::core

#endif // CARAM_CORE_RECORD_H_
