#include "core/match_kernels.h"

#include <bit>

#if defined(CARAM_X86_SIMD)
#include <immintrin.h>
#endif

namespace caram::core::kernels {

namespace {

/** 64 bits of the row starting at @p bitpos (guarded one-past read). */
inline uint64_t
gather64(const uint64_t *row, uint64_t bitpos)
{
    const uint64_t w = bitpos / 64;
    const unsigned off = static_cast<unsigned>(bitpos % 64);
    if (off == 0)
        return row[w];
    return (row[w] >> off) | (row[w + 1] << (64 - off));
}

/** The portable kernel: per-slot scalar XOR+AND with early word exit. */
uint32_t
groupMatchScalar(const GroupArgs &a)
{
    uint32_t match = 0;
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        bool ok = true;
        if (!a.ternary) {
            for (unsigned w = 0; w < a.keyWords; ++w) {
                if ((gather64(a.row, base + 64u * w) ^ a.value[w]) &
                    a.care[w]) {
                    ok = false;
                    break;
                }
            }
        } else {
            for (unsigned w = 0; w < a.keyWords; ++w) {
                if ((gather64(a.row, base + 64u * w) ^ a.value[w]) &
                    a.care[w] &
                    gather64(a.row, base + a.keyBits + 64u * w)) {
                    ok = false;
                    break;
                }
            }
        }
        if (ok)
            match |= 1u << l;
    }
    return match;
}

#if defined(CARAM_X86_SIMD)

/**
 * AVX2: one vector compare covers the whole key.  A slot's value field
 * occupies the contiguous bit range [base, base+keyBits), so its up-to-4
 * aligned 64-bit words all come from the same two overlapping 256-bit
 * loads, shifted by the (uniform) in-word offset -- four row words per
 * instruction, no hardware gather.  Shift counts of 64 produce zero,
 * which makes the word-aligned case branch-free.  The packed key's
 * value/care buffers are padded to 4 words, and the care padding is
 * zero, so the junk a window carries past the key width never produces
 * a mismatch.
 */
__attribute__((target("avx2"))) uint32_t
groupMatchAvx2(const GroupArgs &a)
{
    const __m256i V = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(a.value));
    const __m256i C = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(a.care));
    uint32_t match = 0;
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        const uint64_t *w = a.row + (base >> 6);
        const __m128i off =
            _mm_cvtsi32_si128(static_cast<int>(base & 63));
        const __m128i inv =
            _mm_cvtsi32_si128(64 - static_cast<int>(base & 63));
        const __m256i g = _mm256_or_si256(
            _mm256_srl_epi64(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(w)),
                off),
            _mm256_sll_epi64(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(w + 1)),
                inv));
        __m256i diff =
            _mm256_and_si256(_mm256_xor_si256(g, V), C);
        if (a.ternary) {
            // The stored care field sits exactly keyBits above the
            // value field; a mismatch only counts where it cares.
            const uint64_t cpos = base + a.keyBits;
            const uint64_t *cw = a.row + (cpos >> 6);
            const __m128i coff =
                _mm_cvtsi32_si128(static_cast<int>(cpos & 63));
            const __m128i cinv =
                _mm_cvtsi32_si128(64 - static_cast<int>(cpos & 63));
            const __m256i gc = _mm256_or_si256(
                _mm256_srl_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(cw)),
                    coff),
                _mm256_sll_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(cw + 1)),
                    cinv));
            diff = _mm256_and_si256(diff, gc);
        }
        if (_mm256_testz_si256(diff, diff))
            match |= 1u << l;
    }
    return match;
}

/**
 * AVX-512F: same contiguous-window idea with 512-bit registers, which
 * halves the loads.  A binary slot's value field (<= 256 bits) always
 * fits one 512-bit window.  A ternary slot's value+care pair spans
 * [base, base + 2*keyBits), which fits one window up to 224-bit keys;
 * the care words are then realigned out of the already-loaded window
 * with a lane rotate + shift instead of extra loads.  Wider ternary
 * keys fall back to loading the care window separately.
 */
__attribute__((target("avx2,avx512f"))) uint32_t
groupMatchAvx512(const GroupArgs &a)
{
    // V/C padded to 4 words; upper lanes zero so the window junk in
    // lanes [keyWords, 8) never produces a mismatch.
    const __m512i V = _mm512_zextsi256_si512(_mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(a.value)));
    const __m512i C = _mm512_zextsi256_si512(_mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(a.care)));
    const bool fused = a.ternary && a.keyBits <= 224;
    const __m128i cshift =
        _mm_cvtsi32_si128(static_cast<int>(a.keyBits & 63));
    const __m128i cinv =
        _mm_cvtsi32_si128(64 - static_cast<int>(a.keyBits & 63));
    // Lane selectors rotating the care words down to lane 0 (indices
    // are taken mod 8 by vpermq, so the wrap in high lanes is harmless:
    // those lanes are zeroed by C's padding anyway).
    const __m512i iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i cidx = _mm512_add_epi64(
        iota, _mm512_set1_epi64(static_cast<long long>(a.keyBits / 64)));
    const __m512i cidx1 =
        _mm512_add_epi64(cidx, _mm512_set1_epi64(1));
    uint32_t match = 0;
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        const uint64_t *w = a.row + (base >> 6);
        const __m128i off =
            _mm_cvtsi32_si128(static_cast<int>(base & 63));
        const __m128i inv =
            _mm_cvtsi32_si128(64 - static_cast<int>(base & 63));
        const __m512i g = _mm512_or_si512(
            _mm512_srl_epi64(_mm512_loadu_si512(w), off),
            _mm512_sll_epi64(_mm512_loadu_si512(w + 1), inv));
        __m512i diff = _mm512_and_si512(_mm512_xor_si512(g, V), C);
        if (fused) {
            // g lane q holds row bits [base+64q, base+64q+64): care
            // word w lives at bit keyBits + 64w of that range, i.e. in
            // lanes careLane+w / careLane+w+1 -- rotate them down and
            // close the sub-word gap with one shift pair.
            const __m512i clo = _mm512_permutexvar_epi64(cidx, g);
            const __m512i chi = _mm512_permutexvar_epi64(cidx1, g);
            const __m512i gc = _mm512_or_si512(
                _mm512_srl_epi64(clo, cshift),
                _mm512_sll_epi64(chi, cinv));
            diff = _mm512_and_si512(diff, gc);
        } else if (a.ternary) {
            const uint64_t cpos = base + a.keyBits;
            const uint64_t *cw = a.row + (cpos >> 6);
            const __m128i coff =
                _mm_cvtsi32_si128(static_cast<int>(cpos & 63));
            const __m128i cv =
                _mm_cvtsi32_si128(64 - static_cast<int>(cpos & 63));
            const __m512i gc = _mm512_or_si512(
                _mm512_srl_epi64(_mm512_loadu_si512(cw), coff),
                _mm512_sll_epi64(_mm512_loadu_si512(cw + 1), cv));
            diff = _mm512_and_si512(diff, gc);
        }
        if (_mm512_test_epi64_mask(diff, diff) == 0)
            match |= 1u << l;
    }
    return match;
}

#endif // CARAM_X86_SIMD

/** Scalar multi-key fallback: per slot, per key, the packed compare. */
void
multiKeyMatchScalar(const MultiKeyArgs &a, uint32_t out[kMaxLanes])
{
    for (unsigned l = 0; l < kMaxLanes; ++l)
        out[l] = 0;
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        uint32_t km = 0;
        for (uint32_t km_it = a.keyMask; km_it; km_it &= km_it - 1) {
            const unsigned k =
                static_cast<unsigned>(std::countr_zero(km_it));
            bool ok = true;
            for (unsigned w = 0; w < a.keyWords; ++w) {
                uint64_t diff =
                    (gather64(a.row, base + 64u * w) ^
                     a.keyValueT[w * kMaxGroupKeys + k]) &
                    a.keyCareT[w * kMaxGroupKeys + k];
                if (a.ternary)
                    diff &= gather64(a.row, base + a.keyBits + 64u * w);
                if (diff) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                km |= 1u << k;
        }
        out[l] = km;
    }
}

#if defined(CARAM_X86_SIMD)

/**
 * AVX2 multi-key: lanes hold keys.  Each slot's row word is gathered
 * once (scalar) and broadcast against two 4-key pattern registers, so
 * the row fetch and shift alignment amortize across 8 keys; absent key
 * lanes start dead via an all-ones mismatch.  A group whose keys have
 * all mismatched exits after the offending word -- the common word-0
 * reject costs ~2 instructions per key per slot.
 */
__attribute__((target("avx2"))) void
multiKeyMatchAvx2(const MultiKeyArgs &a, uint32_t out[kMaxLanes])
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i dead0 = _mm256_setr_epi64x(
        (a.keyMask & 1u) ? 0 : -1, (a.keyMask & 2u) ? 0 : -1,
        (a.keyMask & 4u) ? 0 : -1, (a.keyMask & 8u) ? 0 : -1);
    const __m256i dead1 = _mm256_setr_epi64x(
        (a.keyMask & 16u) ? 0 : -1, (a.keyMask & 32u) ? 0 : -1,
        (a.keyMask & 64u) ? 0 : -1, (a.keyMask & 128u) ? 0 : -1);
    for (unsigned l = 0; l < kMaxLanes; ++l)
        out[l] = 0;
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        __m256i mism0 = dead0;
        __m256i mism1 = dead1;
        bool anyAlive = true;
        for (unsigned w = 0; w < a.keyWords; ++w) {
            const __m256i g = _mm256_set1_epi64x(static_cast<long long>(
                gather64(a.row, base + 64u * w)));
            const uint64_t *tv = a.keyValueT + w * kMaxGroupKeys;
            const uint64_t *tc = a.keyCareT + w * kMaxGroupKeys;
            __m256i d0 = _mm256_and_si256(
                _mm256_xor_si256(
                    g, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i *>(tv))),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(tc)));
            __m256i d1 = _mm256_and_si256(
                _mm256_xor_si256(
                    g, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i *>(tv + 4))),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(tc + 4)));
            if (a.ternary) {
                const __m256i gc =
                    _mm256_set1_epi64x(static_cast<long long>(gather64(
                        a.row, base + a.keyBits + 64u * w)));
                d0 = _mm256_and_si256(d0, gc);
                d1 = _mm256_and_si256(d1, gc);
            }
            mism0 = _mm256_or_si256(mism0, d0);
            mism1 = _mm256_or_si256(mism1, d1);
            const __m256i alive = _mm256_or_si256(
                _mm256_cmpeq_epi64(mism0, zero),
                _mm256_cmpeq_epi64(mism1, zero));
            if (_mm256_testz_si256(alive, alive)) {
                anyAlive = false;
                break;
            }
        }
        if (!anyAlive)
            continue;
        const uint32_t lo = static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(mism0, zero))));
        const uint32_t hi = static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(mism1, zero))));
        out[l] = lo | (hi << 4);
    }
}

/**
 * AVX-512 multi-key: all 8 keys in one register, with the surviving
 * key set carried in a mask register; the slot is abandoned as soon as
 * every key has mismatched.
 */
__attribute__((target("avx2,avx512f"))) void
multiKeyMatchAvx512(const MultiKeyArgs &a, uint32_t out[kMaxLanes])
{
    for (unsigned l = 0; l < kMaxLanes; ++l)
        out[l] = 0;
    const __mmask8 keys = static_cast<__mmask8>(a.keyMask & 0xffu);
    for (uint32_t m = a.validMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t base = a.slotBitBase[l];
        __mmask8 alive = keys;
        for (unsigned w = 0; w < a.keyWords && alive; ++w) {
            const __m512i g = _mm512_set1_epi64(static_cast<long long>(
                gather64(a.row, base + 64u * w)));
            __m512i d = _mm512_and_si512(
                _mm512_xor_si512(
                    g, _mm512_loadu_si512(a.keyValueT +
                                          w * kMaxGroupKeys)),
                _mm512_loadu_si512(a.keyCareT + w * kMaxGroupKeys));
            if (a.ternary) {
                d = _mm512_and_si512(
                    d, _mm512_set1_epi64(static_cast<long long>(gather64(
                           a.row, base + a.keyBits + 64u * w))));
            }
            alive = alive & _mm512_testn_epi64_mask(d, d);
        }
        out[l] = alive;
    }
}

#endif // CARAM_X86_SIMD

} // namespace

unsigned
kernelLanes(simd::MatchKernel kernel)
{
    (void)kernel;
    return kMaxLanes;
}

GroupMatchFn
groupMatchFn(simd::MatchKernel kernel)
{
#if defined(CARAM_X86_SIMD)
    switch (kernel) {
      case simd::MatchKernel::Avx2:
        return &groupMatchAvx2;
      case simd::MatchKernel::Avx512:
        return &groupMatchAvx512;
      case simd::MatchKernel::Scalar:
        break;
    }
#else
    (void)kernel;
#endif
    return &groupMatchScalar;
}

MultiKeyMatchFn
multiKeyMatchFn(simd::MatchKernel kernel)
{
#if defined(CARAM_X86_SIMD)
    switch (kernel) {
      case simd::MatchKernel::Avx2:
        return &multiKeyMatchAvx2;
      case simd::MatchKernel::Avx512:
        return &multiKeyMatchAvx512;
      case simd::MatchKernel::Scalar:
        break;
    }
#else
    (void)kernel;
#endif
    return &multiKeyMatchScalar;
}

} // namespace caram::core::kernels
