#ifndef CARAM_CORE_BUCKET_H_
#define CARAM_CORE_BUCKET_H_

/**
 * @file
 * Typed view of one CA-RAM bucket (memory row).
 *
 * Row layout (bit 0 first):
 *
 *   slot 0 | slot 1 | ... | slot S-1 | aux
 *
 * Each slot: value bits (logical key), care bits (if ternary), data
 * bits, valid bit.  The auxiliary field (paper section 3.1) keeps the
 * bucket's used-slot count and the overflow reach: "if the bucket had
 * overflows ... this field can keep a number indicating how far the
 * extended search effort should reach".
 */

#include <cstdint>

#include "common/key.h"
#include "core/config.h"
#include "mem/memory_array.h"

namespace caram::core {

/** Read/write accessor for one row of a slice's memory array. */
class BucketView
{
  public:
    BucketView(mem::MemoryArray &array, const SliceConfig &config,
               uint64_t row);

    unsigned slots() const { return cfg->slotsPerBucket; }
    uint64_t row() const { return rowIndex; }

    /** True when slot @p i holds a record. */
    bool slotValid(unsigned i) const;

    /** Reconstruct the stored key of slot @p i. */
    Key slotKey(unsigned i) const;

    /** Stored data of slot @p i. */
    uint64_t slotData(unsigned i) const;

    /** Store a record into slot @p i and mark it valid. */
    void writeSlot(unsigned i, const Key &key, uint64_t data);

    /** Invalidate slot @p i. */
    void clearSlot(unsigned i);

    /** First invalid slot, or -1 when the bucket is full. */
    int firstFreeSlot() const;

    /** Number of valid slots according to the auxiliary field. */
    unsigned usedCount() const;

    /** Overflow reach recorded in the auxiliary field. */
    unsigned reach() const;

    void setUsedCount(unsigned count);
    void setReach(unsigned reach);

    /** Recount valid slots directly from the row (for integrity checks). */
    unsigned recountUsed() const;

    /**
     * Word-level ternary comparison of slot @p i against @p search
     * without reconstructing the stored Key -- the operation the match
     * processor's parallel comparators perform.  Ignores validity.
     */
    bool slotMatchesKey(unsigned i, const Key &search) const;

    /**
     * Raw packed words of this row (with the array's guard word behind
     * them) -- the in-place operand of the word-parallel match path;
     * see MatchProcessor::searchBucketPacked.
     */
    const uint64_t *rowData() const { return array_->rowData(rowIndex); }

  private:
    uint64_t slotBase(unsigned i) const;
    uint64_t auxBase() const;

    mem::MemoryArray *array_;
    const SliceConfig *cfg;
    uint64_t rowIndex;
};

} // namespace caram::core

#endif // CARAM_CORE_BUCKET_H_
