#include "core/timing_engine.h"

#include <algorithm>
#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace caram::core {

TimingEngine::TimingEngine(Database &db, const TimingConfig &config)
    : db_(&db), cfg(config), clock(config.timing.clockMhz)
{
    const unsigned nbanks = db.layout().independentBanks();
    for (unsigned b = 0; b < nbanks; ++b)
        banks.emplace_back(cfg.timing);
    // Vertical banks each own one physical slice's worth of rows.
    rowsPerBank = db.config().sliceShape.rows();
}

unsigned
TimingEngine::bankOf(uint64_t row) const
{
    if (banks.size() == 1)
        return 0;
    const uint64_t bank = row / rowsPerBank;
    return static_cast<unsigned>(
        std::min<uint64_t>(bank, banks.size() - 1));
}

TimingRunResult
TimingEngine::run(std::span<const Key> keys)
{
    TimingRunResult out;
    const sim::Tick period = clock.period();
    const sim::Tick arrival_gap = cfg.offeredMsps > 0.0
        ? static_cast<sim::Tick>(std::llround(1e6 / cfg.offeredMsps))
        : 0;

    sim::Tick controller_free = 0;
    sim::Tick arrival = 0;
    std::vector<uint64_t> rows;
    for (const Key &key : keys) {
        // Request enters the queue at its arrival time; the controller
        // issues at most one request per cycle.
        const sim::Tick issue =
            clock.nextEdge(std::max(arrival, controller_free));
        controller_free = issue + period;

        rows.clear();
        db_->slice().searchTraced(key, rows);
        if (rows.empty())
            rows.push_back(db_->slice().homeRow(key)); // safety net

        // Chain the accesses: each must wait for its bank and for the
        // previous probe result (probing is sequential by nature).
        sim::Tick ready = issue;
        sim::Tick last_data = issue;
        for (uint64_t row : rows) {
            mem::BankTimer &bank = banks[bankOf(row)];
            last_data = bank.access(ready);
            ready = last_data;
            ++out.memoryAccesses;
        }
        // Match stages are pipelined with the memory: only the last
        // access pays the match latency before the result is queued.
        const sim::Tick done = last_data + cfg.matchCycles * period;
        out.probe.record(arrival, done);

        arrival += arrival_gap;
    }
    out.lookups = keys.size();
    out.achievedMsps = out.probe.throughputMsps();
    out.meanLatencyNs = out.probe.meanLatencyNs();
    return out;
}

double
TimingEngine::analyticBandwidthMsps() const
{
    const double nslice = static_cast<double>(banks.size());
    return nslice / cfg.timing.minCycleGap * cfg.timing.clockMhz;
}

} // namespace caram::core
