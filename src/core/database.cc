#include "core/database.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/epoch.h"
#include "tech/area_model.h"
#include "tech/power_model.h"

namespace caram::core {

SliceConfig
DatabaseConfig::effectiveConfig() const
{
    SliceConfig eff = (gridVertical != 0 && gridHorizontal != 0)
        ? sliceShape.arrangedGrid(gridVertical, gridHorizontal)
        : sliceShape.arranged(physicalSlices, arrangement);
    if (overflow != OverflowPolicy::Probing) {
        // Spills go to the parallel overflow area; the main slice never
        // probes, which is what makes AMAL ~ 1 (section 4.3).
        eff.probe = ProbePolicy::None;
    }
    return eff;
}

Database::Database(DatabaseConfig config) : cfg(std::move(config))
{
    if (!cfg.indexFactory)
        fatal("database needs an index generator factory");
    const SliceConfig eff = cfg.effectiveConfig();
    eff.validate();
    slice_ = std::make_unique<CaRamSlice>(eff, cfg.indexFactory(eff));
    liveSlice_.store(slice_.get(), std::memory_order_seq_cst);
    if (cfg.overflow == OverflowPolicy::ParallelTcam) {
        if (cfg.overflowCapacity == 0)
            fatal("parallel overflow TCAM needs a capacity");
        overflow_ = std::make_unique<cam::Tcam>(eff.logicalKeyBits,
                                                cfg.overflowCapacity);
    } else if (cfg.overflow == OverflowPolicy::ParallelSlice) {
        if (cfg.overflowIndexBits == 0 || cfg.overflowSlots == 0)
            fatal("parallel overflow slice needs a shape");
        SliceConfig ov = eff;
        ov.indexBits = cfg.overflowIndexBits;
        ov.rowOverride = 0;
        ov.slotsPerBucket = cfg.overflowSlots;
        ov.probe = ProbePolicy::Linear;
        ov.maxProbeDistance = static_cast<unsigned>(ov.rows() - 1);
        ov.validate();
        overflowSlice_ =
            std::make_unique<CaRamSlice>(ov, cfg.indexFactory(ov));
    }
}

PhysicalLayout
Database::layout() const
{
    if (cfg.gridVertical != 0 && cfg.gridHorizontal != 0) {
        return {cfg.sliceShape, cfg.gridVertical * cfg.gridHorizontal,
                Arrangement::Vertical, cfg.gridVertical};
    }
    return {cfg.sliceShape, cfg.physicalSlices, cfg.arrangement, 0};
}

void
Database::checkAccessible() const
{
    if (powerState() != PowerState::Active)
        fatal("database '" + cfg.name + "' is in data-retention mode");
}

bool
Database::insert(const Record &record, int priority)
{
    return insertDetailed(record, priority).ok;
}

Database::DetailedInsert
Database::insertDetailed(const Record &record, int priority)
{
    checkAccessible();
    DetailedInsert out;
    if (overflowSlice_) {
        // Victim CA-RAM slice: copies that miss their home bucket go
        // to the overflow slice, which is searched in parallel.
        const auto homes = slice_->homeRows(record.key);
        std::vector<InsertResult> placed;
        bool needs_overflow = false;
        for (uint64_t home : homes) {
            InsertResult r = slice_->insertAt(home, record);
            if (r.ok)
                placed.push_back(r);
            else
                needs_overflow = true;
        }
        double overflow_cost = 0.0;
        if (needs_overflow) {
            const InsertSummary ov = overflowSlice_->insert(record);
            if (!ov.ok) {
                for (const InsertResult &r : placed)
                    slice_->removePlacement(r);
                return out;
            }
            noteOverflowMutation(record.key);
            out.tcamCopies = 1;
            // The overflow slice is probed in parallel with the main
            // access; only its own probe depth can exceed one access.
            overflow_cost = ov.maxDistance + 1.0;
        }
        out.ok = true;
        out.copies = static_cast<unsigned>(placed.size());
        out.meanAccessCost = std::max(1.0, overflow_cost);
        return out;
    }
    if (!overflow_) {
        const InsertSummary s = slice_->insert(record);
        out.ok = s.ok;
        out.copies = static_cast<unsigned>(s.placements.size());
        out.maxDistance = s.maxDistance;
        if (s.ok && out.copies > 0) {
            double cost = 0.0;
            for (const InsertResult &r : s.placements)
                cost += r.distance + 1.0;
            out.meanAccessCost = cost / out.copies;
        }
        return out;
    }

    // With a victim TCAM, place what fits bucket-locally and send the
    // rest to the overflow area (one TCAM entry covers all failed
    // duplicated copies).  Every lookup then costs exactly one access.
    const auto homes = slice_->homeRows(record.key);
    std::vector<InsertResult> placed;
    bool needs_overflow = false;
    for (uint64_t home : homes) {
        InsertResult r = slice_->insertAt(home, record);
        if (r.ok)
            placed.push_back(r);
        else
            needs_overflow = true;
    }
    if (needs_overflow) {
        if (!overflow_->insert(record.key, record.data, priority)) {
            // Overflow area exhausted: roll back and fail.
            for (const InsertResult &r : placed)
                slice_->removePlacement(r);
            return out;
        }
        noteOverflowMutation(record.key);
    }
    out.ok = true;
    out.copies = static_cast<unsigned>(placed.size());
    out.tcamCopies = needs_overflow ? 1 : 0;
    out.meanAccessCost = 1.0;
    return out;
}

InsertBatchSummary
Database::insertBatch(std::span<const Record> records,
                      InsertOutcome *outcomes, const int *priorities)
{
    checkAccessible();
    if (!overflow_ && !overflowSlice_)
        return slice_->insertBatch(records, outcomes);
    // Parallel overflow area: spills route through the overflow
    // structures record-at-a-time; the summary still reports
    // accept/fail so callers need not special-case the policy.
    InsertBatchSummary sum;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const DetailedInsert d =
            insertDetailed(records[i], priorities ? priorities[i] : 0);
        if (d.ok)
            ++sum.accepted;
        else
            ++sum.failed;
        ++sum.fallbackRecords;
        if (outcomes) {
            outcomes[i].ok = d.ok;
            outcomes[i].copies = d.copies + d.tcamCopies;
            outcomes[i].maxDistance = d.maxDistance;
        }
    }
    return sum;
}

bool
Database::canRebuild() const
{
    if (cfg.overflow == OverflowPolicy::ParallelTcam)
        return false;
    if (cfg.overflow == OverflowPolicy::ParallelSlice)
        return !slice_->config().ternary;
    return true;
}

namespace {

/** Strict weak order over records: raw key words, then data -- only
 *  used to group identical stored copies during a rebuild. */
bool
recordBefore(const Record &a, const Record &b)
{
    const auto av = a.key.valueWords(), bv = b.key.valueWords();
    for (std::size_t w = 0; w < av.size(); ++w) {
        if (av[w] != bv[w])
            return av[w] < bv[w];
    }
    const auto ac = a.key.careWords(), bc = b.key.careWords();
    for (std::size_t w = 0; w < ac.size(); ++w) {
        if (ac[w] != bc[w])
            return ac[w] < bc[w];
    }
    return a.data < b.data;
}

} // namespace

Database::RebuildSummary
Database::rebuild()
{
    checkAccessible();
    RebuildSummary out;
    if (!canRebuild())
        return out;

    // Collect every stored copy from the raw rows (rollback residue has
    // its valid bit cleared and is skipped here, so a rebuild also
    // scrubs it).
    std::vector<Record> copies;
    auto collect = [&copies](CaRamSlice &s) {
        for (uint64_t row = 0; row < s.config().rows(); ++row) {
            BucketView b = s.bucket(row);
            for (unsigned i = 0; i < b.slots(); ++i) {
                if (b.slotValid(i))
                    copies.push_back(Record{b.slotKey(i), b.slotData(i)});
            }
        }
    };
    collect(*slice_);
    if (overflowSlice_)
        collect(*overflowSlice_);
    std::sort(copies.begin(), copies.end(), recordBefore);

    // Reduce stored multiplicity to logical records: a record stored m
    // times with c candidate homes was inserted m / c times.
    std::vector<Record> todo;
    todo.reserve(copies.size());
    for (std::size_t i = 0; i < copies.size();) {
        std::size_t j = i + 1;
        while (j < copies.size() && !recordBefore(copies[i], copies[j]))
            ++j;
        const auto m = static_cast<uint64_t>(j - i);
        const uint64_t per = overflowSlice_
            ? 1
            : static_cast<uint64_t>(
                  slice_->homeRows(copies[i].key).size());
        if (m % per != 0) {
            // Only possible when the array was mutated behind the CAM
            // interface (RAM-mode writes); keep every record.
            warn(strprintf("rebuild of '%s': record multiplicity %llu "
                           "is not a multiple of its %llu candidate "
                           "homes",
                           cfg.name.c_str(), (unsigned long long)m,
                           (unsigned long long)per));
        }
        const uint64_t k = (m + per - 1) / per;
        for (uint64_t t = 0; t < k; ++t)
            todo.push_back(copies[i]);
        i = j;
    }

    clear();
    out.records = todo.size();
    out.ingest = insertBatch(todo);
    out.failedRecords = out.ingest.failed;
    out.ok = out.ingest.failed == 0;
    return out;
}

Database::RebuildSummary
Database::rebuildSwap(sim::EpochDomain &domain)
{
    checkAccessible();
    RebuildSummary out;
    // Probing-only: the overflow areas have no concurrent read path, so
    // a swap could not keep their lookups safe.
    if (cfg.overflow != OverflowPolicy::Probing || !canRebuild())
        return out;

    // Collect and reduce exactly as rebuild() does (same code path
    // produces the same `todo` stream, so the repacked table is
    // bit-identical: both start from a zeroed array and bulk-ingest the
    // identical record sequence).
    std::vector<Record> copies;
    for (uint64_t row = 0; row < slice_->config().rows(); ++row) {
        BucketView b = slice_->bucket(row);
        for (unsigned i = 0; i < b.slots(); ++i) {
            if (b.slotValid(i))
                copies.push_back(Record{b.slotKey(i), b.slotData(i)});
        }
    }
    std::sort(copies.begin(), copies.end(), recordBefore);
    std::vector<Record> todo;
    todo.reserve(copies.size());
    for (std::size_t i = 0; i < copies.size();) {
        std::size_t j = i + 1;
        while (j < copies.size() && !recordBefore(copies[i], copies[j]))
            ++j;
        const auto m = static_cast<uint64_t>(j - i);
        const auto per = static_cast<uint64_t>(
            slice_->homeRows(copies[i].key).size());
        if (m % per != 0) {
            warn(strprintf("rebuild of '%s': record multiplicity %llu "
                           "is not a multiple of its %llu candidate "
                           "homes",
                           cfg.name.c_str(), (unsigned long long)m,
                           (unsigned long long)per));
        }
        const uint64_t k = (m + per - 1) / per;
        for (uint64_t t = 0; t < k; ++t)
            todo.push_back(copies[i]);
        i = j;
    }

    // Ingest into a fresh slice while readers keep searching the old
    // one, publish, then retire the old slice into the epoch domain.
    const SliceConfig eff = cfg.effectiveConfig();
    auto fresh = std::make_unique<CaRamSlice>(eff, cfg.indexFactory(eff));
    // The torn-read injection knob is a database-level debug setting:
    // it must survive the swap or an injection test loses its fault
    // stream at the first rebuild.
    fresh->setTornReadInjection(slice_->tornReadInjection());
    // The pre-filter flag likewise: the fresh slice's filter is built
    // by the ingest below and published together with the slice under
    // the epoch domain, so readers switch slice and filter atomically.
    fresh->setPrefilterEnabled(slice_->prefilterEnabled());
    out.records = todo.size();
    out.ingest = fresh->insertBatch(todo);
    out.failedRecords = out.ingest.failed;
    out.ok = out.ingest.failed == 0;

    CaRamSlice *old = slice_.release();
    slice_ = std::move(fresh);
    liveSlice_.store(slice_.get(), std::memory_order_seq_cst);
    domain.retire([old] { delete old; });
    domain.reclaim();
    return out;
}

SearchResult
Database::searchConcurrent(
    const Key &search_key,
    CaRamSlice::ConcurrentSearchScratch &scratch) const
{
    if (cfg.overflow != OverflowPolicy::Probing)
        fatal("searchConcurrent requires the Probing overflow policy");
    if (powerState() != PowerState::Active)
        return SearchResult{}; // retained: report a miss, touch nothing
    const CaRamSlice *live = liveSlice_.load(std::memory_order_seq_cst);
    return live->searchConcurrent(search_key, scratch);
}

void
Database::mergeOverflow(const Key &search_key, SearchResult &result,
                        uint64_t &overflow_fetches)
{
    if (overflowSlice_) {
        // Overflow slice searched in parallel: latency is the larger
        // of the two paths.
        SearchResult ov = overflowSlice_->search(search_key);
        overflow_fetches += ov.bucketsAccessed;
        result.bucketsAccessed =
            std::max(result.bucketsAccessed, ov.bucketsAccessed);
        if (ov.hit) {
            const bool take_overflow =
                !result.hit ||
                (slice_->config().lpm &&
                 ov.key.carePopcount() > result.key.carePopcount());
            if (take_overflow) {
                const unsigned accesses = result.bucketsAccessed;
                result = ov;
                result.bucketsAccessed = accesses;
            }
        }
        return;
    }
    if (!overflow_)
        return;

    // The victim TCAM is searched simultaneously; it costs no extra
    // memory access.
    const cam::CamSearchResult ov = overflow_->search(search_key);
    if (!ov.hit)
        return;
    const bool take_overflow =
        !result.hit ||
        (slice_->config().lpm &&
         ov.key.carePopcount() > result.key.carePopcount());
    if (take_overflow) {
        result.hit = true;
        result.multipleMatch = ov.multipleMatch;
        result.row = 0;
        result.slot = static_cast<unsigned>(ov.index);
        result.data = ov.data;
        result.key = ov.key;
    }
}

uint64_t
Database::mergeOverflowResult(const Key &search_key, SearchResult &result)
{
    uint64_t overflow_fetches = 0;
    mergeOverflow(search_key, result, overflow_fetches);
    return overflow_fetches;
}

SearchResult
Database::search(const Key &search_key)
{
    checkAccessible();
    SearchResult result = slice_->search(search_key);
    uint64_t unused = 0;
    mergeOverflow(search_key, result, unused);
    return result;
}

uint64_t
Database::searchBatch(const Key *const *keys, unsigned n,
                      SearchResult *out)
{
    checkAccessible();
    uint64_t fetches = slice_->searchBatch(keys, n, out);
    if (overflow_ || overflowSlice_) {
        // The overflow area is searched per key (it is small and keyed
        // independently); its slice accesses are genuine row fetches.
        for (unsigned i = 0; i < n; ++i)
            mergeOverflow(*keys[i], out[i], fetches);
    }
    return fetches;
}

unsigned
Database::erase(const Key &key)
{
    checkAccessible();
    unsigned removed = slice_->erase(key);
    const unsigned main_removed = removed;
    if (overflow_) {
        while (overflow_->erase(key))
            ++removed;
    }
    if (overflowSlice_)
        removed += overflowSlice_->erase(key);
    if (removed != main_removed)
        noteOverflowMutation(key);
    return removed;
}

void
Database::noteOverflowMutation(const Key &key)
{
    thread_local std::vector<uint64_t> scratch;
    overflowDirtyRegions_.fetch_or(slice_->searchRegionMask(key, scratch),
                                   std::memory_order_relaxed);
}

uint64_t
Database::size() const
{
    return slice_->size() + overflowEntries();
}

void
Database::clear()
{
    slice_->clear();
    if (overflow_)
        overflow_->clear();
    if (overflowSlice_)
        overflowSlice_->clear();
}

double
Database::amal() const
{
    if (cfg.overflow == OverflowPolicy::ParallelTcam)
        return 1.0;
    if (cfg.overflow == OverflowPolicy::ParallelSlice) {
        // Main slice and overflow slice are searched in parallel, so a
        // lookup completes when the longer of the two access chains
        // does: AMAL is the max of the chains, never less than one.
        return std::max({1.0, loadStats().amalUniform(),
                         overflowSlice_->loadStats().amalUniform()});
    }
    return std::max(1.0, loadStats().amalUniform());
}

uint64_t
Database::nominalStorageBits() const
{
    const SliceConfig eff = cfg.effectiveConfig();
    uint64_t bits = eff.rows() * eff.nominalRowBits();
    if (overflowSlice_) {
        const SliceConfig &ov = overflowSlice_->config();
        bits += ov.rows() * ov.nominalRowBits();
    }
    return bits;
}

double
Database::areaUm2() const
{
    double area = tech::caRamArrayUm2(nominalStorageBits());
    if (overflow_)
        area += overflow_->areaUm2();
    return area;
}

double
Database::searchEnergyNj() const
{
    const SliceConfig eff = cfg.effectiveConfig();
    const auto access = tech::caRamAccessEnergyNj(
        eff.nominalRowBits(), eff.nominalRowBits(), eff.slotsPerBucket,
        eff.rows());
    double energy = access.totalNj() * amal();
    if (overflow_)
        energy += overflow_->searchEnergyNj();
    if (overflowSlice_) {
        const SliceConfig &ov = overflowSlice_->config();
        energy += tech::caRamAccessEnergyNj(ov.nominalRowBits(),
                                            ov.nominalRowBits(),
                                            ov.slotsPerBucket, ov.rows())
                      .totalNj();
    }
    return energy;
}

double
Database::powerW(double searches_per_sec) const
{
    const SliceConfig eff = cfg.effectiveConfig();
    const auto access = tech::caRamAccessEnergyNj(
        eff.nominalRowBits(), eff.nominalRowBits(), eff.slotsPerBucket,
        eff.rows());
    const double mbits = static_cast<double>(nominalStorageBits()) / 1e6;
    if (powerState() == PowerState::Retention) {
        // Data-retention mode: only the retention refresh remains
        // (Morishita's power-down data retention mode).
        return tech::edramStaticMwPerMbit * 1e-3 * mbits *
               tech::edramRetentionFactor;
    }
    double power = tech::caRamPowerW(access, searches_per_sec, amal(),
                                     mbits, cfg.physicalSlices);
    if (overflow_) {
        power += overflow_->searchEnergyNj() * 1e-9 * searches_per_sec;
    }
    return power;
}

double
Database::searchBandwidthMsps(const mem::MemTiming &timing) const
{
    // Paper section 3.4: B_CA-RAM = N_slice / n_mem * f_clk, counting
    // only independently accessible slices.
    const double banks = layout().independentBanks();
    return banks / timing.minCycleGap * timing.clockMhz / amal();
}

} // namespace caram::core
