#ifndef CARAM_CORE_MATCH_PROCESSOR_H_
#define CARAM_CORE_MATCH_PROCESSOR_H_

/**
 * @file
 * Functional model of the CA-RAM match processor (paper sections 3.1 and
 * 3.3).  Its four steps are:
 *
 *   1. expand search key   -- replicate/align the key across the row
 *                             (hidden under the memory access)
 *   2. calculate match vector -- per-slot ternary comparison
 *   3. decode match vector -- priority encode, detect multi/no match
 *   4. extract result      -- multiplex out the matched record
 *
 * Comparison implements the extended single-bit comparator of
 * Figure 4(b): a bit matches when the values agree or when either the
 * search key's mask (Mi) or the stored key's mask (TMi) marks it
 * don't care.
 */

#include <cstdint>
#include <vector>

#include "common/key.h"
#include "core/bucket.h"
#include "core/config.h"

namespace caram::core {

/** Result of matching one bucket. */
struct BucketMatch
{
    bool hit = false;
    bool multipleMatch = false;
    unsigned slot = 0;
    uint64_t data = 0;
    Key key;
};

/** The decoupled match logic shared by a slice's bucket accesses. */
class MatchProcessor
{
  public:
    explicit MatchProcessor(const SliceConfig &config);

    /**
     * Steps 1+2: the per-slot match vector.  A slot is set when it is
     * valid and its stored key ternary-matches the search key.
     */
    std::vector<bool> matchVector(const BucketView &bucket,
                                  const Key &search) const;

    /**
     * Steps 3+4 on top of the match vector: priority-encoded first
     * match, as the hardware returns it.
     */
    BucketMatch searchBucket(const BucketView &bucket,
                             const Key &search) const;

    /**
     * Longest-prefix variant: among all matching slots, extract the one
     * with the most specified key bits (ties go to the lowest slot).
     * With buckets sorted on descending prefix length this returns the
     * same slot as the plain priority encoder.
     */
    BucketMatch searchBucketBest(const BucketView &bucket,
                                 const Key &search) const;

    /**
     * Word-level fast path of the slot comparison (the model the
     * hardware's parallel comparators implement); the test suite checks
     * it against Key::matches bit by bit.
     */
    static bool slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config);

  private:
    BucketMatch extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const;

    const SliceConfig *cfg;
};

} // namespace caram::core

#endif // CARAM_CORE_MATCH_PROCESSOR_H_
