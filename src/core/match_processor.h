#ifndef CARAM_CORE_MATCH_PROCESSOR_H_
#define CARAM_CORE_MATCH_PROCESSOR_H_

/**
 * @file
 * Functional model of the CA-RAM match processor (paper sections 3.1 and
 * 3.3).  Its four steps are:
 *
 *   1. expand search key   -- replicate/align the key across the row
 *                             (hidden under the memory access)
 *   2. calculate match vector -- per-slot ternary comparison
 *   3. decode match vector -- priority encode, detect multi/no match
 *   4. extract result      -- multiplex out the matched record
 *
 * Comparison implements the extended single-bit comparator of
 * Figure 4(b): a bit matches when the values agree or when either the
 * search key's mask (Mi) or the stored key's mask (TMi) marks it
 * don't care.
 *
 * Two implementations coexist:
 *
 *  - The *word-parallel* path: step 1 is performed once per lookup by
 *    pack(), which snapshots the search key's value/care words into a
 *    reusable template (a software rendition of the hardware's
 *    key-expand stage, whose replication across slots is free wiring).
 *    searchBucketPacked() then evaluates each slot as XOR+AND over
 *    64-bit words gathered from the row at the slot's bit offset, with
 *    a per-word early exit -- no bit-by-bit decode, no Key
 *    materialization, no allocation.  Gathering lazily per slot beats
 *    eagerly pre-aligning the key for every slot: a non-matching slot
 *    (the common case) is rejected after a single gathered word, so
 *    most of an eager O(slots x words) expansion would be thrown away.
 *    All CaRamSlice search paths use this.
 *  - The *reference* path (matchVector/searchBucket/searchBucketBest):
 *    the original per-slot comparison through BucketView accessors,
 *    kept as the oracle the differential tests check the fast path
 *    against.
 *
 * The word-parallel path itself dispatches between comparator kernels
 * (core/match_kernels.h): the scalar per-slot loop, an AVX2 kernel
 * evaluating 4 slots per pass, and an AVX-512 kernel evaluating 8.
 * The kernel is sampled once at construction (common/cpuid.h), so a
 * processor never changes kernels mid-lifetime; rebuilding the slice
 * (or the processor) picks up a changed override/environment.  All
 * kernels feed the same priority-encode/LPM/extract logic, which keeps
 * them bit-identical above the match vector by construction.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/cpuid.h"
#include "common/key.h"
#include "core/bucket.h"
#include "core/config.h"
#include "core/match_kernels.h"

namespace caram::core {

/** Result of matching one bucket. */
struct BucketMatch
{
    bool hit = false;
    bool multipleMatch = false;
    unsigned slot = 0;
    uint64_t data = 0;
    Key key;
};

/** The decoupled match logic shared by a slice's bucket accesses. */
class MatchProcessor
{
  public:
    explicit MatchProcessor(const SliceConfig &config);

    /**
     * The expanded search key (step 1): the key's value and care words
     * in key space, zero-padded so every per-slot window reads inside
     * the buffers.  Pack once per lookup, reuse across every bucket
     * the lookup probes.  The buffers are reused across pack() calls
     * (per-slice scratch), so a steady-state search performs no
     * allocations.
     */
    struct PackedKey
    {
        /** Search value words, [0, keyWords). */
        std::vector<uint64_t> value;
        /** Search care words, same indexing; bits beyond the key width
         *  are zero, which masks the junk bits a gathered row word
         *  carries past the field. */
        std::vector<uint64_t> careMask;
        /** The original search key (for duplication / fallback). */
        Key key;
    };

    /** Step 1 of the word-parallel path: expand @p search into @p out. */
    void pack(const Key &search, PackedKey &out) const;

    /**
     * Steps 2-4 on the raw row words: priority-encoded first match among
     * valid slots, exactly as searchBucket() returns it, evaluated as
     * XOR+mask over 64-bit words in place.
     */
    BucketMatch searchBucketPacked(const BucketView &bucket,
                                   const PackedKey &packed) const;

    /**
     * Longest-prefix variant of the packed path: the matching slot with
     * the most specified stored bits (ties to the lowest slot), with the
     * per-slot popcount taken directly from the row's care words.
     */
    BucketMatch searchBucketBestPacked(const BucketView &bucket,
                                       const PackedKey &packed) const;

    /** Valid-and-matching test of one slot on the packed path. */
    bool slotMatchesPacked(const BucketView &bucket, unsigned slot,
                           const PackedKey &packed) const;

    /** Number of valid slots matching @p packed (massive evaluation). */
    unsigned countMatches(const BucketView &bucket,
                          const PackedKey &packed) const;

    /**
     * A group of up to kernels::kMaxGroupKeys packed keys sharing one
     * bucket access, stored transposed (word-major, key lanes adjacent)
     * so the multi-key kernels load one vector of "word w of every key".
     * The batched search pipeline builds one group per shared home row;
     * the embedded arrays keep steady-state grouping allocation-free.
     */
    struct PackedKeyGroup
    {
        /** keyValueT[w * kMaxGroupKeys + k] = word w of key k's value;
         *  absent key lanes are zero in the first keyWords words (words
         *  past keyWords are never read by the kernels and packGroup
         *  leaves them untouched). */
        alignas(64) std::array<uint64_t,
                               Key::kWords * kernels::kMaxGroupKeys>
            valueT{};
        /** Same layout for the care words (zero lanes never match a
         *  nonzero diff, but absent lanes are still masked out). */
        alignas(64) std::array<uint64_t,
                               Key::kWords * kernels::kMaxGroupKeys>
            careT{};
        /** The grouped keys, for extraction and serial fallbacks. */
        std::array<const PackedKey *, kernels::kMaxGroupKeys> keys{};
        unsigned size = 0;   ///< keys in the group
        uint32_t keyMask = 0; ///< (1 << size) - 1
    };

    /**
     * Transpose @p n packed keys (<= kernels::kMaxGroupKeys) into
     * @p out.  The pointed-to PackedKeys must outlive the group.
     */
    void packGroup(const PackedKey *const *keys, unsigned n,
                   PackedKeyGroup &out) const;

    /**
     * Batched form of searchBucketPacked: out[k] receives, for every
     * key lane k set in @p aliveMask, exactly what
     * searchBucketPacked(bucket, *group.keys[k]) would return.  Lanes
     * outside aliveMask are left untouched.  One row traversal serves
     * the whole group.
     */
    void searchBucketKeys(const BucketView &bucket,
                          const PackedKeyGroup &group, uint32_t aliveMask,
                          BucketMatch *out) const;

    /**
     * Batched form of searchBucketBestPacked (longest-prefix ranking),
     * with the same per-lane contract as searchBucketKeys.
     */
    void searchBucketBestKeys(const BucketView &bucket,
                              const PackedKeyGroup &group,
                              uint32_t aliveMask, BucketMatch *out) const;

    /** The comparator kernel this processor dispatched to at build. */
    simd::MatchKernel kernel() const { return kernel_; }

    /**
     * Steps 1+2 of the reference path: the per-slot match vector.  A
     * slot is set when it is valid and its stored key ternary-matches
     * the search key.
     */
    std::vector<bool> matchVector(const BucketView &bucket,
                                  const Key &search) const;

    /**
     * Steps 3+4 on top of the match vector: priority-encoded first
     * match, as the hardware returns it (reference path).
     */
    BucketMatch searchBucket(const BucketView &bucket,
                             const Key &search) const;

    /**
     * Longest-prefix variant: among all matching slots, extract the one
     * with the most specified key bits (ties go to the lowest slot).
     * With buckets sorted on descending prefix length this returns the
     * same slot as the plain priority encoder (reference path).
     */
    BucketMatch searchBucketBest(const BucketView &bucket,
                                 const Key &search) const;

    /**
     * Word-level fast path of the slot comparison (the model the
     * hardware's parallel comparators implement); the test suite checks
     * it against Key::matches bit by bit.
     */
    static bool slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config);

  private:
    BucketMatch extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const;

    /** Valid bit of slot @p s read straight from the row words. */
    bool
    slotValidRaw(const uint64_t *row, unsigned s) const
    {
        return (row[validWord[s]] >> validShift[s]) & 1u;
    }

    bool slotMatchesRaw(const uint64_t *row, unsigned s,
                        const PackedKey &packed) const;
    unsigned storedCarePopcount(const uint64_t *row, unsigned s) const;

    /** Valid bits of the lanes_ slots starting at @p start, as a lane
     *  bitmask (lanes past the last slot read as invalid). */
    /** Valid bits of the @p width slots starting at @p start. */
    uint32_t groupValidMask(const uint64_t *row, unsigned start,
                            unsigned width) const;

    /** All lanes' match bits for the group starting at @p start. */
    uint32_t groupMatchMask(const uint64_t *row, unsigned start,
                            const PackedKey &packed) const;

    /** Per-slot key-match masks for lanes_ slots starting at @p start:
     *  out[l] = key lanes (within keyMask) matching slot start+l. */
    void multiKeyMatchMask(const uint64_t *row, unsigned start,
                           const PackedKeyGroup &group, uint32_t keyMask,
                           uint32_t out[kernels::kMaxLanes]) const;

    const SliceConfig *cfg;

    // Row-layout tables derived from the configuration once: per slot,
    // the bit position of its value field and its valid bit's
    // word/shift; per key word, the mask of bits inside the key width.
    unsigned keyWords = 0; ///< ceil(logicalKeyBits / 64)
    std::vector<uint64_t> slotBitBase; ///< padded to kMaxLanes past slots
    std::vector<uint32_t> validWord;
    std::vector<uint8_t> validShift;
    std::vector<uint64_t> widthMask; ///< [keyWords]

    // Comparator kernel, sampled once at construction.
    simd::MatchKernel kernel_ = simd::MatchKernel::Scalar;
    kernels::GroupMatchFn groupFn_ = nullptr;
    kernels::MultiKeyMatchFn multiKeyFn_ = nullptr;
    unsigned lanes_ = 1; ///< slots per group call of the active kernel
};

} // namespace caram::core

#endif // CARAM_CORE_MATCH_PROCESSOR_H_
