#ifndef CARAM_CORE_MATCH_PROCESSOR_H_
#define CARAM_CORE_MATCH_PROCESSOR_H_

/**
 * @file
 * Functional model of the CA-RAM match processor (paper sections 3.1 and
 * 3.3).  Its four steps are:
 *
 *   1. expand search key   -- replicate/align the key across the row
 *                             (hidden under the memory access)
 *   2. calculate match vector -- per-slot ternary comparison
 *   3. decode match vector -- priority encode, detect multi/no match
 *   4. extract result      -- multiplex out the matched record
 *
 * Comparison implements the extended single-bit comparator of
 * Figure 4(b): a bit matches when the values agree or when either the
 * search key's mask (Mi) or the stored key's mask (TMi) marks it
 * don't care.
 *
 * Two implementations coexist:
 *
 *  - The *word-parallel* path: step 1 is performed once per lookup by
 *    pack(), which snapshots the search key's value/care words into a
 *    reusable template (a software rendition of the hardware's
 *    key-expand stage, whose replication across slots is free wiring).
 *    searchBucketPacked() then evaluates each slot as XOR+AND over
 *    64-bit words gathered from the row at the slot's bit offset, with
 *    a per-word early exit -- no bit-by-bit decode, no Key
 *    materialization, no allocation.  Gathering lazily per slot beats
 *    eagerly pre-aligning the key for every slot: a non-matching slot
 *    (the common case) is rejected after a single gathered word, so
 *    most of an eager O(slots x words) expansion would be thrown away.
 *    All CaRamSlice search paths use this.
 *  - The *reference* path (matchVector/searchBucket/searchBucketBest):
 *    the original per-slot comparison through BucketView accessors,
 *    kept as the oracle the differential tests check the fast path
 *    against.
 */

#include <cstdint>
#include <vector>

#include "common/key.h"
#include "core/bucket.h"
#include "core/config.h"

namespace caram::core {

/** Result of matching one bucket. */
struct BucketMatch
{
    bool hit = false;
    bool multipleMatch = false;
    unsigned slot = 0;
    uint64_t data = 0;
    Key key;
};

/** The decoupled match logic shared by a slice's bucket accesses. */
class MatchProcessor
{
  public:
    explicit MatchProcessor(const SliceConfig &config);

    /**
     * The expanded search key (step 1): the key's value and care words
     * in key space, zero-padded so every per-slot window reads inside
     * the buffers.  Pack once per lookup, reuse across every bucket
     * the lookup probes.  The buffers are reused across pack() calls
     * (per-slice scratch), so a steady-state search performs no
     * allocations.
     */
    struct PackedKey
    {
        /** Search value words, [0, keyWords). */
        std::vector<uint64_t> value;
        /** Search care words, same indexing; bits beyond the key width
         *  are zero, which masks the junk bits a gathered row word
         *  carries past the field. */
        std::vector<uint64_t> careMask;
        /** The original search key (for duplication / fallback). */
        Key key;
    };

    /** Step 1 of the word-parallel path: expand @p search into @p out. */
    void pack(const Key &search, PackedKey &out) const;

    /**
     * Steps 2-4 on the raw row words: priority-encoded first match among
     * valid slots, exactly as searchBucket() returns it, evaluated as
     * XOR+mask over 64-bit words in place.
     */
    BucketMatch searchBucketPacked(const BucketView &bucket,
                                   const PackedKey &packed) const;

    /**
     * Longest-prefix variant of the packed path: the matching slot with
     * the most specified stored bits (ties to the lowest slot), with the
     * per-slot popcount taken directly from the row's care words.
     */
    BucketMatch searchBucketBestPacked(const BucketView &bucket,
                                       const PackedKey &packed) const;

    /** Valid-and-matching test of one slot on the packed path. */
    bool slotMatchesPacked(const BucketView &bucket, unsigned slot,
                           const PackedKey &packed) const;

    /** Number of valid slots matching @p packed (massive evaluation). */
    unsigned countMatches(const BucketView &bucket,
                          const PackedKey &packed) const;

    /**
     * Steps 1+2 of the reference path: the per-slot match vector.  A
     * slot is set when it is valid and its stored key ternary-matches
     * the search key.
     */
    std::vector<bool> matchVector(const BucketView &bucket,
                                  const Key &search) const;

    /**
     * Steps 3+4 on top of the match vector: priority-encoded first
     * match, as the hardware returns it (reference path).
     */
    BucketMatch searchBucket(const BucketView &bucket,
                             const Key &search) const;

    /**
     * Longest-prefix variant: among all matching slots, extract the one
     * with the most specified key bits (ties go to the lowest slot).
     * With buckets sorted on descending prefix length this returns the
     * same slot as the plain priority encoder (reference path).
     */
    BucketMatch searchBucketBest(const BucketView &bucket,
                                 const Key &search) const;

    /**
     * Word-level fast path of the slot comparison (the model the
     * hardware's parallel comparators implement); the test suite checks
     * it against Key::matches bit by bit.
     */
    static bool slotMatches(const BucketView &bucket, unsigned slot,
                            const Key &search, const SliceConfig &config);

  private:
    BucketMatch extract(const BucketView &bucket, unsigned slot,
                        bool multiple) const;

    /** Valid bit of slot @p s read straight from the row words. */
    bool
    slotValidRaw(const uint64_t *row, unsigned s) const
    {
        return (row[validWord[s]] >> validShift[s]) & 1u;
    }

    bool slotMatchesRaw(const uint64_t *row, unsigned s,
                        const PackedKey &packed) const;
    unsigned storedCarePopcount(const uint64_t *row, unsigned s) const;

    const SliceConfig *cfg;

    // Row-layout tables derived from the configuration once: per slot,
    // the bit position of its value field and its valid bit's
    // word/shift; per key word, the mask of bits inside the key width.
    unsigned keyWords = 0; ///< ceil(logicalKeyBits / 64)
    std::vector<uint64_t> slotBitBase;
    std::vector<uint32_t> validWord;
    std::vector<uint8_t> validShift;
    std::vector<uint64_t> widthMask; ///< [keyWords]
};

} // namespace caram::core

#endif // CARAM_CORE_MATCH_PROCESSOR_H_
