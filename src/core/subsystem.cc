#include "core/subsystem.h"

#include <ostream>

#include "common/logging.h"
#include "sim/epoch.h"
#include "common/strings.h"

namespace caram::core {

CaRamSubsystem::CaRamSubsystem(std::size_t request_queue_capacity,
                               std::size_t result_queue_capacity,
                               bool split_port_queues)
    : results(result_queue_capacity),
      requestCapacity(request_queue_capacity),
      splitQueues(split_port_queues)
{
    if (!splitQueues)
        requestQueues.emplace_back(requestCapacity);
}

Database &
CaRamSubsystem::addDatabase(DatabaseConfig config)
{
    for (const auto &db : databases) {
        if (db->name() == config.name)
            fatal(strprintf("database '%s' already exists",
                            config.name.c_str()));
    }
    databases.push_back(std::make_unique<Database>(std::move(config)));
    if (splitQueues)
        requestQueues.emplace_back(requestCapacity);
    return *databases.back();
}

sim::BoundedQueue<PortRequest> &
CaRamSubsystem::queueFor(unsigned port)
{
    return splitQueues ? requestQueues[port] : requestQueues.front();
}

const sim::BoundedQueue<PortRequest> &
CaRamSubsystem::requestQueue(unsigned port) const
{
    if (splitQueues) {
        if (port >= requestQueues.size())
            fatal(strprintf("no request queue for virtual port %u",
                            port));
        return requestQueues[port];
    }
    // Shared-queue mode: every port routes to the one queue, but a port
    // that routes nowhere is still a caller error (port 0 always names
    // the shared queue itself).
    if (port != 0 && port >= databases.size())
        fatal(strprintf("no request queue for virtual port %u", port));
    return requestQueues.front();
}

Database &
CaRamSubsystem::database(unsigned port)
{
    if (port >= databases.size())
        fatal(strprintf("no database behind virtual port %u", port));
    return *databases[port];
}

Database &
CaRamSubsystem::database(const std::string &name)
{
    return database(portOf(name));
}

unsigned
CaRamSubsystem::portOf(const std::string &name) const
{
    for (std::size_t i = 0; i < databases.size(); ++i) {
        if (databases[i]->name() == name)
            return static_cast<unsigned>(i);
    }
    fatal(strprintf("no database named '%s'", name.c_str()));
}

bool
CaRamSubsystem::submit(unsigned port, const Key &key, uint64_t tag)
{
    if (port >= databases.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    PortRequest req;
    req.port = port;
    req.op = PortOp::Search;
    req.key = key;
    req.tag = tag;
    return queueFor(port).tryPush(std::move(req));
}

bool
CaRamSubsystem::submitInsert(unsigned port, const Record &record,
                             int priority, uint64_t tag)
{
    if (port >= databases.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    PortRequest req;
    req.port = port;
    req.op = PortOp::Insert;
    req.key = record.key;
    req.data = record.data;
    req.priority = priority;
    req.tag = tag;
    return queueFor(port).tryPush(std::move(req));
}

bool
CaRamSubsystem::submitErase(unsigned port, const Key &key, uint64_t tag)
{
    if (port >= databases.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    PortRequest req;
    req.port = port;
    req.op = PortOp::Erase;
    req.key = key;
    req.tag = tag;
    return queueFor(port).tryPush(std::move(req));
}

bool
CaRamSubsystem::submitRebuild(unsigned port, uint64_t tag)
{
    if (port >= databases.size())
        fatal(strprintf("submit to unknown virtual port %u", port));
    PortRequest req;
    req.port = port;
    req.op = PortOp::Rebuild; // the key field is unused for rebuilds
    req.tag = tag;
    return queueFor(port).tryPush(std::move(req));
}

std::size_t
CaRamSubsystem::submitBatch(std::span<const PortRequest> requests)
{
    std::size_t accepted = 0;
    for (const PortRequest &req : requests) {
        if (req.port >= databases.size())
            fatal(strprintf("submit to unknown virtual port %u",
                            req.port));
        if (!queueFor(req.port).tryPush(req))
            break; // keep the accepted prefix contiguous (FIFO order)
        ++accepted;
    }
    return accepted;
}

PortResponse
executePortRequest(Database &db, const PortRequest &req)
{
    return executePortRequest(db, req, nullptr);
}

PortResponse
executePortRequest(Database &db, const PortRequest &req,
                   sim::EpochDomain *domain)
{
    PortResponse resp;
    resp.tag = req.tag;
    resp.port = req.port;
    resp.op = req.op;
    if (db.powerState() != PowerState::Active) {
        // The database is retained: answer with an error response
        // instead of throwing, so the rest of the drain survives.
        resp.ok = false;
        return resp;
    }
    switch (req.op) {
      case PortOp::Search: {
        const SearchResult r = db.search(req.key);
        resp.hit = r.hit;
        resp.data = r.data;
        resp.key = r.key;
        resp.bucketsAccessed = r.bucketsAccessed;
        break;
      }
      case PortOp::Insert:
        resp.hit = db.insert(Record{req.key, req.data}, req.priority);
        break;
      case PortOp::Erase:
        resp.data = db.erase(req.key);
        resp.hit = resp.data > 0;
        break;
      case PortOp::Rebuild: {
        if (!db.canRebuild()) {
            resp.ok = false;
            break;
        }
        // Concurrent-mutation engines pass an epoch domain: a Probing
        // database then repacks into a fresh slice and swaps it in, so
        // epoch-guarded readers are never stalled (nor ever observe a
        // half-repacked table).  The response is bit-identical to the
        // in-place path.
        const bool swap = domain != nullptr &&
            db.config().overflow == OverflowPolicy::Probing;
        const Database::RebuildSummary s =
            swap ? db.rebuildSwap(*domain) : db.rebuild();
        resp.hit = s.ok;
        resp.data = s.records;
        break;
      }
      case PortOp::Maintenance:
        // Maintenance steps are intercepted by the engine's execution
        // path (ParallelSearchEngine::execute) before reaching here;
        // they carry no payload and produce no response.
        panic("maintenance requests are engine-internal");
    }
    return resp;
}

std::size_t
CaRamSubsystem::process(std::size_t max_requests)
{
    std::size_t done = 0;
    std::size_t idle_queues = 0;
    while (done < max_requests && !results.full() &&
           idle_queues < requestQueues.size()) {
        // Round-robin over the (possibly split) request queues.
        auto &queue = requestQueues[nextQueue];
        nextQueue = (nextQueue + 1) % requestQueues.size();
        auto req = queue.tryPop();
        if (!req) {
            ++idle_queues;
            continue;
        }
        idle_queues = 0;
        PortResponse resp = executePortRequest(*databases[req->port],
                                               *req);
        results.tryPush(std::move(resp)); // cannot fail: checked above
        ++done;
    }
    return done;
}

std::optional<PortResponse>
CaRamSubsystem::fetchResult()
{
    return results.tryPop();
}

uint64_t
CaRamSubsystem::ramWords() const
{
    uint64_t total = 0;
    for (const auto &db : databases)
        total += db->slice().ramWords();
    return total;
}

std::pair<const Database *, uint64_t>
CaRamSubsystem::ramRoute(uint64_t word_addr) const
{
    for (const auto &db : databases) {
        const uint64_t words = db->slice().ramWords();
        if (word_addr < words)
            return {db.get(), word_addr};
        word_addr -= words;
    }
    fatal("RAM-mode address beyond the subsystem's storage");
}

std::pair<Database *, uint64_t>
CaRamSubsystem::ramRoute(uint64_t word_addr)
{
    for (const auto &db : databases) {
        const uint64_t words = db->slice().ramWords();
        if (word_addr < words)
            return {db.get(), word_addr};
        word_addr -= words;
    }
    fatal("RAM-mode address beyond the subsystem's storage");
}

uint64_t
CaRamSubsystem::ramLoad(uint64_t word_addr) const
{
    auto [db, local] = ramRoute(word_addr);
    return db->slice().ramLoad(local);
}

void
CaRamSubsystem::ramStore(uint64_t word_addr, uint64_t value)
{
    auto [db, local] = ramRoute(word_addr);
    db->slice().ramStore(local, value);
}

void
CaRamSubsystem::printStats(std::ostream &os) const
{
    os << "---------- CA-RAM subsystem stats ----------\n";
    for (std::size_t i = 0; i < databases.size(); ++i) {
        const Database &db = *databases[i];
        const LoadStats s = db.loadStats();
        const CaRamSlice &slice = db.slice();
        os << "db." << db.name() << ".port " << i << "\n"
           << "db." << db.name() << ".records " << s.records << "\n"
           << "db." << db.name() << ".loadFactor " << s.loadFactor()
           << "\n"
           << "db." << db.name() << ".spilledRecords "
           << s.spilledRecords << "\n"
           << "db." << db.name() << ".overflowingBuckets "
           << s.overflowingBuckets << "\n"
           << "db." << db.name() << ".amalUniform " << s.amalUniform()
           << "\n"
           << "db." << db.name() << ".searches "
           << slice.searchesPerformed() << "\n"
           << "db." << db.name() << ".bucketAccesses "
           << slice.searchAccesses() << "\n"
           << "db." << db.name() << ".overflowEntries "
           << db.overflowEntries() << "\n"
           << "db." << db.name() << ".areaMm2 " << db.areaUm2() * 1e-6
           << "\n";
    }
    for (std::size_t q = 0; q < requestQueues.size(); ++q) {
        os << "queue.request." << q << ".pushes "
           << requestQueues[q].totalPushes() << "\n"
           << "queue.request." << q << ".stalls "
           << requestQueues[q].totalStalls() << "\n"
           << "queue.request." << q << ".peak "
           << requestQueues[q].peakOccupancy() << "\n";
    }
    os << "queue.result.pushes " << results.totalPushes() << "\n"
       << "queue.result.stalls " << results.totalStalls() << "\n"
       << "queue.result.peak " << results.peakOccupancy() << "\n"
       << "--------------------------------------------\n";
}

double
CaRamSubsystem::totalAreaUm2() const
{
    double total = 0.0;
    for (const auto &db : databases)
        total += db->areaUm2();
    return total;
}

} // namespace caram::core
