#ifndef CARAM_CORE_TIMING_ENGINE_H_
#define CARAM_CORE_TIMING_ENGINE_H_

/**
 * @file
 * Cycle-level timing model of a CA-RAM database's search pipeline, used
 * for the section 3.4 bandwidth/latency experiments:
 *
 *   B_CA-RAM = N_slice / n_mem * f_clk
 *
 * The model: an input controller issues at most one request per clock
 * cycle from the request queue; each memory access occupies its bank for
 * n_mem cycles (mem::BankTimer); probing chains accesses serially; the
 * match stages are pipelined with the memory and add a fixed latency to
 * each lookup.  Vertical slices are independent banks selected by the
 * high row bits; a horizontal arrangement operates in lock-step as a
 * single bank.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/database.h"
#include "mem/timing.h"
#include "sim/event_queue.h"
#include "sim/probes.h"

namespace caram::core {

/** Timing-run configuration. */
struct TimingConfig
{
    mem::MemTiming timing = mem::MemTiming::embeddedDram();
    /** Cycles of match-pipeline latency added after the last access
     *  (match vector + decode + extract at one stage per cycle). */
    unsigned matchCycles = 3;
    /** Offered load: requests per second; 0 = saturating (back to back). */
    double offeredMsps = 0.0;
};

/** Result of a timing run. */
struct TimingRunResult
{
    sim::LatencyProbe probe;
    uint64_t lookups = 0;
    uint64_t memoryAccesses = 0;
    double achievedMsps = 0.0;
    double meanLatencyNs = 0.0;
};

/** Drives timed lookups against one database. */
class TimingEngine
{
  public:
    TimingEngine(Database &db, const TimingConfig &config);

    /** Run the given search keys through the pipeline. */
    TimingRunResult run(std::span<const Key> keys);

    /** The paper's analytic bandwidth bound, Msps. */
    double analyticBandwidthMsps() const;

  private:
    unsigned bankOf(uint64_t row) const;

    Database *db_;
    TimingConfig cfg;
    sim::Clock clock;
    std::vector<mem::BankTimer> banks;
    uint64_t rowsPerBank;
};

} // namespace caram::core

#endif // CARAM_CORE_TIMING_ENGINE_H_
