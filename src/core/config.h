#ifndef CARAM_CORE_CONFIG_H_
#define CARAM_CORE_CONFIG_H_

/**
 * @file
 * Configuration of a CA-RAM slice and of multi-slice arrangements
 * (paper sections 3.1 and 3.2).
 *
 * Naming follows the paper: R index bits select one of 2^R rows
 * (buckets); each bucket holds S key slots; the nominal row width C is
 * S * N where N is the *stored* key width (a ternary key stores 2 bits
 * per symbol, so an IPv4 prefix is N = 64).
 *
 * The storage layout adds, on top of the paper's nominal C, one valid
 * bit per slot, optional data bits per slot ("storing data along with
 * its key in CA-RAM"), and the per-row auxiliary field that tracks
 * occupancy and "how far the extended search effort should reach".
 */

#include <cstdint>

namespace caram::core {

/** How bucket overflows find an alternative bucket (section 2.1). */
enum class ProbePolicy
{
    None,       ///< no overflow handling: inserts fail when the bucket is full
    Linear,     ///< linear probing over consecutive buckets
    SecondHash, ///< fixed odd stride derived from a second hash of the key
};

/** How multiple physical slices form one logical database (section 3.2). */
enum class Arrangement
{
    Horizontal, ///< wider buckets (more slots per bucket)
    Vertical,   ///< more rows (more index bits)
};

/** Static configuration of one (logical) CA-RAM slice. */
struct SliceConfig
{
    /** Index width R: the slice has 2^R rows (unless rowOverride). */
    unsigned indexBits = 10;

    /**
     * Non-power-of-two row count (0 = use 2^indexBits).  Vertical
     * arrangements of a non-power-of-two slice count (e.g. Table 3's
     * design B: five 2^14-row slices) produce such configurations; the
     * index generator then reduces modulo this row count.
     */
    uint64_t rowOverride = 0;

    /** Logical key width in bits (32 for IPv4, 128 for 16-char strings). */
    unsigned logicalKeyBits = 32;

    /**
     * Ternary storage: each stored key carries a care mask, doubling the
     * stored key width, exactly as the paper halves capacity when "the
     * ternary search capability is enabled".
     */
    bool ternary = false;

    /** Key slots per bucket (the paper's S). */
    unsigned slotsPerBucket = 32;

    /** Data bits stored with each key (0 = key-only CA-RAM). */
    unsigned dataBits = 0;

    /** Overflow policy. */
    ProbePolicy probe = ProbePolicy::Linear;

    /** Maximum probe distance before an insert fails. */
    unsigned maxProbeDistance = 64;

    /**
     * Longest-prefix-match mode: searches examine every bucket within
     * the home bucket's overflow reach and return the match with the
     * most specified key bits, instead of stopping at the first hit.
     */
    bool lpm = false;

    /** Auxiliary field width per row: used count (16) + reach (16). */
    static constexpr unsigned auxBits = 32;

    /// @name Derived quantities
    /// @{
    uint64_t
    rows() const
    {
        return rowOverride != 0 ? rowOverride : uint64_t{1} << indexBits;
    }

    /** Stored key width N (doubled when ternary). */
    unsigned storedKeyBits() const
    {
        return logicalKeyBits * (ternary ? 2u : 1u);
    }

    /** Bits per slot including data and the valid bit. */
    unsigned slotBits() const { return storedKeyBits() + dataBits + 1; }

    /** The paper's nominal C: keys only. */
    unsigned nominalRowBits() const
    {
        return slotsPerBucket * storedKeyBits();
    }

    /** Actual bits per stored row. */
    unsigned storageRowBits() const
    {
        return auxBits + slotsPerBucket * slotBits();
    }

    /** Total key slots in the slice. */
    uint64_t capacity() const { return rows() * slotsPerBucket; }
    /// @}

    /** Throws FatalError when inconsistent. */
    void validate() const;

    /**
     * The effective logical configuration of @p count physical slices of
     * this shape arranged @p how (horizontal: S multiplies; vertical:
     * R gains log2(count) bits -- count must be a power of two).
     */
    SliceConfig arranged(unsigned count, Arrangement how) const;

    /**
     * Mixed arrangement (section 3.2: "arranged vertically ...,
     * horizontally ..., or in a mixed way"): a grid of
     * @p vertical x @p horizontal physical slices -- wider buckets
     * within a row group, more rows across groups.
     */
    SliceConfig arrangedGrid(unsigned vertical, unsigned horizontal) const;
};

/** Physical composition of a logical slice, for cost and timing models. */
struct PhysicalLayout
{
    /** Per-physical-slice configuration. */
    SliceConfig sliceShape;
    /** Number of physical slices. */
    unsigned slices = 1;
    Arrangement arrangement = Arrangement::Horizontal;
    /** Vertical groups of a mixed (grid) arrangement; 0 = not mixed. */
    unsigned mixedVerticalGroups = 0;

    /**
     * Independently accessible banks: vertical slices (or the vertical
     * groups of a grid) serve different rows concurrently; horizontal
     * slices operate in lock-step on one lookup and act as a single
     * bank.
     */
    unsigned
    independentBanks() const
    {
        if (mixedVerticalGroups != 0)
            return mixedVerticalGroups;
        return arrangement == Arrangement::Vertical ? slices : 1;
    }
};

} // namespace caram::core

#endif // CARAM_CORE_CONFIG_H_
