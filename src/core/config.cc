#include "core/config.h"

#include "common/bitops.h"
#include "common/key.h"
#include "common/logging.h"
#include "common/strings.h"

namespace caram::core {

void
SliceConfig::validate() const
{
    if (indexBits == 0 || indexBits > 40)
        fatal("index bits must be in 1..40");
    if (logicalKeyBits == 0 || logicalKeyBits > Key::kMaxKeyBits)
        fatal(strprintf("logical key width must be 1..%u bits",
                        Key::kMaxKeyBits));
    // Ternary storage doubles the *row* footprint (2 bits per symbol),
    // not the Key width -- value and care words are separate arrays --
    // so ternary slices support the full logical key range.
    if (slotsPerBucket == 0 || slotsPerBucket > 4096)
        fatal("slots per bucket must be in 1..4096");
    if (dataBits > 64)
        fatal("at most 64 data bits per slot");
    if (probe != ProbePolicy::None && maxProbeDistance == 0)
        fatal("probing enabled but max probe distance is zero");
    if (maxProbeDistance >= rows())
        fatal("max probe distance must be below the row count");
    if (probe == ProbePolicy::SecondHash && !isPow2(rows()))
        fatal("second-hash probing requires a power-of-two row count");
    if (rowOverride != 0 && rowOverride > (uint64_t{1} << 40))
        fatal("row override too large");
}

SliceConfig
SliceConfig::arranged(unsigned count, Arrangement how) const
{
    if (count == 0)
        fatal("arrangement needs at least one slice");
    SliceConfig out = *this;
    if (count == 1)
        return out;
    switch (how) {
      case Arrangement::Horizontal:
        out.slotsPerBucket = slotsPerBucket * count;
        break;
      case Arrangement::Vertical:
        if (isPow2(count) && rowOverride == 0) {
            out.indexBits = indexBits + floorLog2(count);
        } else {
            // Non-power-of-two row space: the index generator reduces
            // modulo the row count (e.g. Table 3's design B).
            out.rowOverride = rows() * count;
            out.indexBits = ceilLog2(out.rowOverride);
        }
        break;
    }
    out.validate();
    return out;
}

SliceConfig
SliceConfig::arrangedGrid(unsigned vertical, unsigned horizontal) const
{
    return arranged(horizontal, Arrangement::Horizontal)
        .arranged(vertical, Arrangement::Vertical);
}

} // namespace caram::core
