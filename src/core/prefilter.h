#ifndef CARAM_CORE_PREFILTER_H_
#define CARAM_CORE_PREFILTER_H_

/**
 * @file
 * Per-row counting pre-filter: a compact summary of every row's
 * contents that lets the search paths skip row fetches which provably
 * cannot match -- before touching the MemoryArray, before charging a
 * modeled bucket access (DESIGN.md section 4e).
 *
 * Each row owns five 64-bit words (40 bytes, independent of the row's
 * slot count or key width):
 *
 *   words 0..3   64 four-bit *sticky saturating* counters -- a
 *                counting Bloom block over the signatures of the
 *                fully specified keys stored in the row.  Every such
 *                key raises k = 2 counters chosen by a splitmix mix of
 *                its value words; erase lowers them again (counting
 *                semantics make erase safe, unlike a plain Bloom bit
 *                array).  A counter that ever reaches 15 sticks there
 *                forever: its exact contributor count is lost, so it
 *                conservatively reads as "maybe present" until the
 *                filter is rebuilt wholesale.  The invariant that
 *                makes pruning sound: a nibble below 15 was never
 *                saturated, so it counts its live contributors
 *                exactly, and nibble == 0 implies zero contributors.
 *
 *   word 4       meta: occupancy(16) | wildcard(16) | reach(16).
 *                occupancy counts the row's valid slots; wildcard
 *                counts stored keys with don't-care bits (which the
 *                signature block deliberately ignores -- a wildcard
 *                key can match a search key whose signature differs);
 *                reach mirrors the home bucket's overflow reach so a
 *                pruned home row's chain length is known without
 *                fetching the row.
 *
 * The prune rule (mayMatch() == false allows skipping the row):
 *
 *   occupancy == 0                                  -- empty row, or
 *   search key fully specified AND wildcard == 0
 *     AND either of the key's two counters == 0     -- signature miss.
 *
 * Concurrency contract: one mutating thread per slice (the rule the
 * slice's scratch guard already enforces) performs all writes, each
 * inside the owning row's seqlock writer section; every word is a
 * single std::atomic<uint64_t>, so readers can never observe a torn
 * word.  Serial readers (the slice-owning thread) consult the words
 * directly; concurrent readers (CaRamSlice::searchConcurrent)
 * additionally validate the consult against the row's sequence, and
 * decline to prune when a writer was mid-row.  Either way the error is
 * one-sided: a stale word maps to a valid earlier filter state, whose
 * pruning verdict can at worst demand an extra fetch of a
 * non-matching row -- never skip a row holding a visible match (the
 * full argument is in DESIGN.md section 4e).
 *
 * suspend() covers RAM-mode stores, which rewrite raw bits behind the
 * filter's back: a suspended filter answers mayMatch() == true for
 * every row until the next wholesale rebuild (clearAll() +
 * re-population, as adoptRamContents() and clear() perform).
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/key.h"

namespace caram::core {

/** The per-slice pre-filter over all rows.  See the file comment. */
class RowPrefilter
{
  public:
    /** Atomic words per row: 4 counter words + 1 meta word. */
    static constexpr unsigned kWordsPerRow = 5;
    /** 4-bit counters per row (two raised per stored key). */
    static constexpr unsigned kCounters = 64;
    /** Sticky saturation ceiling of one counter. */
    static constexpr uint64_t kCounterMax = 15;

    RowPrefilter() = default;

    /** Size the filter for @p rows, all-zero (an empty table). */
    void reset(uint64_t rows);

    /**
     * Signature of a key's value bits -- identical for a stored key
     * and the fully specified search key that equals it, which is the
     * only case the counter block is consulted in.
     */
    static uint64_t signatureOf(const Key &key);

    /** Record a stored copy of @p key in @p row.  Call from inside the
     *  row's seqlock writer section. */
    void add(uint64_t row, const Key &key);

    /** Remove a stored copy of @p key from @p row (counting
     *  semantics).  Call from inside the row's writer section. */
    void remove(uint64_t row, const Key &key);

    /** Mirror the home bucket's overflow reach.  Call from inside the
     *  row's writer section. */
    void setReach(uint64_t row, unsigned reach);

    /** The mirrored overflow reach of @p row's bucket. */
    unsigned
    reach(uint64_t row) const
    {
        return static_cast<unsigned>(
            (meta(row).load(std::memory_order_relaxed) >> 32) & 0xffff);
    }

    /**
     * False when @p row provably holds no match for the key behind
     * @p sig -- the caller may skip the fetch.  @p sig_usable is
     * whether the search key is fully specified (only then is the
     * signature comparison meaningful; partial search keys fall back
     * to occupancy-only pruning).  Always true while suspended.
     */
    bool
    mayMatch(uint64_t row, uint64_t sig, bool sig_usable) const
    {
        if (suspended_.load(std::memory_order_relaxed))
            return true;
        const uint64_t m = meta(row).load(std::memory_order_relaxed);
        if ((m & 0xffff) == 0)
            return false; // no valid slot anywhere in the row
        if (!sig_usable || ((m >> 16) & 0xffff) != 0)
            return true; // signatures can't speak for wildcard keys
        return counterAt(row, sig & 63) != 0 &&
               counterAt(row, (sig >> 6) & 63) != 0;
    }

    /** mayMatch() that also reports the row's mirrored reach (one meta
     *  load serves both) -- the home-row consult of a chain walk. */
    bool
    consultHome(uint64_t row, uint64_t sig, bool sig_usable,
                unsigned &reach_out) const
    {
        const uint64_t m = meta(row).load(std::memory_order_relaxed);
        reach_out = static_cast<unsigned>((m >> 32) & 0xffff);
        if (suspended_.load(std::memory_order_relaxed))
            return true;
        if ((m & 0xffff) == 0)
            return false;
        if (!sig_usable || ((m >> 16) & 0xffff) != 0)
            return true;
        return counterAt(row, sig & 63) != 0 &&
               counterAt(row, (sig >> 6) & 63) != 0;
    }

    /** Zero every word (the table was cleared or is being rebuilt
     *  wholesale) and lift a suspension. */
    void clearAll();

    /** Declare the filter stale (RAM-mode stores bypassed it): every
     *  mayMatch() answers true until clearAll() rebuilds it. */
    void
    suspend()
    {
        suspended_.store(true, std::memory_order_relaxed);
    }

    bool
    suspended() const
    {
        return suspended_.load(std::memory_order_relaxed);
    }

    /** Filter memory, bytes (the bench's overhead accounting). */
    uint64_t
    memoryBytes() const
    {
        return words_.size() * sizeof(std::atomic<uint64_t>);
    }

  private:
    std::atomic<uint64_t> &
    meta(uint64_t row)
    {
        return words_[row * kWordsPerRow + 4];
    }

    const std::atomic<uint64_t> &
    meta(uint64_t row) const
    {
        return words_[row * kWordsPerRow + 4];
    }

    uint64_t
    counterAt(uint64_t row, uint64_t c) const
    {
        const uint64_t w = words_[row * kWordsPerRow + (c >> 4)].load(
            std::memory_order_relaxed);
        return (w >> ((c & 15) * 4)) & kCounterMax;
    }

    /** Raise (+1) or lower (-1) counter @p c of @p row, sticky at
     *  saturation.  Single-writer. */
    void bump(uint64_t row, uint64_t c, bool up);

    std::vector<std::atomic<uint64_t>> words_;
    std::atomic<bool> suspended_{false};
};

} // namespace caram::core

#endif // CARAM_CORE_PREFILTER_H_
