#include "core/bucket.h"

#include <algorithm>
#include <cassert>

#include "common/bitops.h"
#include "common/logging.h"

namespace caram::core {

BucketView::BucketView(mem::MemoryArray &array, const SliceConfig &config,
                       uint64_t row)
    : array_(&array), cfg(&config), rowIndex(row)
{
    assert(row < config.rows());
}

uint64_t
BucketView::slotBase(unsigned i) const
{
    assert(i < cfg->slotsPerBucket);
    return static_cast<uint64_t>(i) * cfg->slotBits();
}

uint64_t
BucketView::auxBase() const
{
    return static_cast<uint64_t>(cfg->slotsPerBucket) * cfg->slotBits();
}

bool
BucketView::slotValid(unsigned i) const
{
    const uint64_t valid_bit =
        slotBase(i) + cfg->storedKeyBits() + cfg->dataBits;
    return array_->readBits(rowIndex, valid_bit, 1) != 0;
}

Key
BucketView::slotKey(unsigned i) const
{
    const uint64_t base = slotBase(i);
    const unsigned kb = cfg->logicalKeyBits;
    // Read value/care bits 64 at a time.  Key words are little-endian,
    // the same convention as the row layout, so this is a straight
    // word copy -- no per-bit reassembly.
    uint64_t v[Key::kWords] = {};
    uint64_t c[Key::kWords] = {};
    for (unsigned lo = 0; lo < kb; lo += 64) {
        const unsigned len = std::min(64u, kb - lo);
        v[lo / 64] = array_->readBits(rowIndex, base + lo, len);
        c[lo / 64] = cfg->ternary
            ? array_->readBits(rowIndex, base + kb + lo, len)
            : maskBits(len);
    }
    const unsigned words = static_cast<unsigned>(ceilDiv(kb, 64));
    return Key::fromWords({v, words}, {c, words}, kb);
}

uint64_t
BucketView::slotData(unsigned i) const
{
    if (cfg->dataBits == 0)
        return 0;
    return array_->readBits(rowIndex, slotBase(i) + cfg->storedKeyBits(),
                            cfg->dataBits);
}

void
BucketView::writeSlot(unsigned i, const Key &key, uint64_t data)
{
    if (key.bits() != cfg->logicalKeyBits)
        fatal("record key width does not match the slice configuration");
    if (!cfg->ternary && !key.fullySpecified())
        fatal("ternary key stored in a binary slice");
    const uint64_t base = slotBase(i);
    const unsigned kb = cfg->logicalKeyBits;
    const auto value = key.valueWords();
    const auto care = key.careWords();
    for (unsigned lo = 0; lo < kb; lo += 64) {
        const unsigned len = std::min(64u, kb - lo);
        array_->writeBits(rowIndex, base + lo, len, value[lo / 64]);
        if (cfg->ternary)
            array_->writeBits(rowIndex, base + kb + lo, len, care[lo / 64]);
    }
    if (cfg->dataBits > 0) {
        if (cfg->dataBits < 64 && (data >> cfg->dataBits) != 0)
            fatal("record data does not fit the configured data field");
        array_->writeBits(rowIndex, base + cfg->storedKeyBits(),
                          cfg->dataBits, data);
    }
    array_->writeBits(rowIndex, base + cfg->storedKeyBits() + cfg->dataBits,
                      1, 1);
}

void
BucketView::clearSlot(unsigned i)
{
    array_->writeBits(rowIndex,
                      slotBase(i) + cfg->storedKeyBits() + cfg->dataBits, 1,
                      0);
}

int
BucketView::firstFreeSlot() const
{
    for (unsigned i = 0; i < cfg->slotsPerBucket; ++i) {
        if (!slotValid(i))
            return static_cast<int>(i);
    }
    return -1;
}

unsigned
BucketView::usedCount() const
{
    return static_cast<unsigned>(array_->readBits(rowIndex, auxBase(), 16));
}

unsigned
BucketView::reach() const
{
    return static_cast<unsigned>(
        array_->readBits(rowIndex, auxBase() + 16, 16));
}

void
BucketView::setUsedCount(unsigned count)
{
    assert(count <= cfg->slotsPerBucket);
    array_->writeBits(rowIndex, auxBase(), 16, count);
}

void
BucketView::setReach(unsigned reach)
{
    assert(reach < (1u << 16));
    array_->writeBits(rowIndex, auxBase() + 16, 16, reach);
}

bool
BucketView::slotMatchesKey(unsigned i, const Key &search) const
{
    assert(search.bits() == cfg->logicalKeyBits);
    const uint64_t base = slotBase(i);
    const unsigned kb = cfg->logicalKeyBits;
    const auto sv = search.valueWords();
    const auto sc = search.careWords();
    for (unsigned lo = 0; lo < kb; lo += 64) {
        const unsigned len = std::min(64u, kb - lo);
        const uint64_t v = array_->readBits(rowIndex, base + lo, len);
        const uint64_t c = cfg->ternary
            ? array_->readBits(rowIndex, base + kb + lo, len)
            : maskBits(len);
        // Mismatch where both sides care and the values disagree.
        if ((v ^ sv[lo / 64]) & c & sc[lo / 64] & maskBits(len))
            return false;
    }
    return true;
}

unsigned
BucketView::recountUsed() const
{
    unsigned used = 0;
    for (unsigned i = 0; i < cfg->slotsPerBucket; ++i)
        used += slotValid(i) ? 1 : 0;
    return used;
}

} // namespace caram::core
