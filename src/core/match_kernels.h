#ifndef CARAM_CORE_MATCH_KERNELS_H_
#define CARAM_CORE_MATCH_KERNELS_H_

/**
 * @file
 * The interchangeable comparator kernels behind MatchProcessor's packed
 * search path.
 *
 * The hardware match processor compares every slot of the fetched row
 * against the expanded search key simultaneously (paper section 3.3,
 * "the search key is compared against the keys fetched from the
 * accessed row in parallel").  The host-side rendition evaluates one
 * *group* of slots per kernel call:
 *
 *   - scalar: one slot at a time, 64-bit XOR+AND with per-word early
 *     exit (the PR-2 path; always available, the portable fallback)
 *   - AVX2: a slot's value field is a contiguous bit range of the row,
 *     so its up-to-4 aligned words come from two overlapping 256-bit
 *     loads plus a uniform shift -- one XOR+AND compares 4 row words,
 *     with no data-dependent branches until the per-slot verdict
 *   - AVX-512: the same windowing with 512-bit registers, halving the
 *     loads; a ternary slot's adjacent value+care fields (<= 224-bit
 *     keys) share one window, with the care words realigned by a lane
 *     permute instead of extra loads
 *
 * A kernel call answers "which of these (up to 8) slots are valid and
 * ternary-match the packed key" as a lane bitmask -- the caller owns
 * priority encoding, LPM ranking and extraction, which keeps the three
 * kernels bit-identical by construction everywhere above this line.
 *
 * The SIMD kernels carry per-function target attributes, so the file
 * compiles without -mavx2/-mavx512f and the binary stays runnable on
 * hosts without those ISA extensions; runtime dispatch (common/cpuid.h)
 * picks the widest kernel the executing CPU supports.
 */

#include <cstdint>

#include "common/cpuid.h"

namespace caram::core::kernels {

/** Maximum lanes any kernel consumes per call (a whole group of slots
 *  is evaluated per invocation, so per-call setup -- loading the packed
 *  key into vector registers, the function-pointer dispatch -- is
 *  amortized across the group). */
inline constexpr unsigned kMaxLanes = 16;

/** One group evaluation: up to kMaxLanes slots of one bucket. */
struct GroupArgs
{
    /** Packed row words (guarded storage: a 512-bit load starting at
     *  any in-row word is safe, see mem::MemoryArray::kGuardWords). */
    const uint64_t *row;
    /** Packed search value words; readable for 4 words (pack() pads),
     *  meaningful in [0, keyWords). */
    const uint64_t *value;
    /** Packed search care words, same padding (double as the key-width
     *  mask -- the padding words are zero). */
    const uint64_t *care;
    /**
     * Per-lane bit positions of the lanes' value fields within the row.
     * Must be readable for kMaxLanes entries (MatchProcessor pads its
     * table); lanes beyond the group are excluded via validMask.
     */
    const uint64_t *slotBitBase;
    /** Lane l set = lane l's slot holds a record (and is a real slot). */
    uint32_t validMask;
    unsigned keyWords; ///< ceil(keyBits / 64)
    unsigned keyBits;  ///< logical key width (stored care sits this far up)
    bool ternary;      ///< stored keys carry their own care mask
};

/**
 * Evaluate one group: returns the bitmask of lanes whose slot is valid
 * and whose stored key ternary-matches the packed search key.
 */
using GroupMatchFn = uint32_t (*)(const GroupArgs &args);

/** Slots a group call of @p kernel evaluates (currently kMaxLanes for
 *  every kernel; callers must not assume a constant). */
unsigned kernelLanes(simd::MatchKernel kernel);

/** Keys a multi-key evaluation compares per call. */
inline constexpr unsigned kMaxGroupKeys = 8;

/**
 * Multi-key evaluation: up to kMaxLanes slots of one bucket against up
 * to kMaxGroupKeys packed keys at once.  This is the batched pipeline's
 * inner loop: when several lookups share a home row, each slot's row
 * words are fetched once and compared against every key's pattern
 * simultaneously -- the SIMD lanes hold *keys* here, so the row fetch,
 * the shift alignment and the loop overhead are all amortized across
 * the group.
 */
struct MultiKeyArgs
{
    /** Packed row words (same guard guarantees as GroupArgs). */
    const uint64_t *row;
    /** Per-lane slot bit positions, padded as in GroupArgs. */
    const uint64_t *slotBitBase;
    /** Lane l set = slot lane l holds a record. */
    uint32_t validMask;
    /**
     * Transposed key patterns: word w of key k at [w * kMaxGroupKeys
     * + k], for keyWords words.  Lanes of absent keys (beyond the
     * group size) must be zero-filled; they are masked via keyMask.
     */
    const uint64_t *keyValueT;
    const uint64_t *keyCareT; ///< same layout; doubles as width mask
    /** Key lane k set = lane k holds a real key of the group. */
    uint32_t keyMask;
    unsigned keyWords;
    unsigned keyBits;
    bool ternary;
};

/**
 * Evaluate the group: out[l] receives the bitmask of key lanes whose
 * pattern ternary-matches slot lane l (0 for invalid slots; bits
 * outside keyMask are never set).  out must hold kMaxLanes entries.
 */
using MultiKeyMatchFn = void (*)(const MultiKeyArgs &args,
                                 uint32_t out[kMaxLanes]);

/** The multi-key evaluator for @p kernel (scalar fallback as above). */
MultiKeyMatchFn multiKeyMatchFn(simd::MatchKernel kernel);

/**
 * The evaluator for @p kernel.  The caller must only request kernels
 * that are available (simd::kernelAvailable); asking for a compiled-out
 * kernel returns the scalar evaluator.
 */
GroupMatchFn groupMatchFn(simd::MatchKernel kernel);

} // namespace caram::core::kernels

#endif // CARAM_CORE_MATCH_KERNELS_H_
