#ifndef CARAM_SPEECH_PARTITIONED_ENGINE_H_
#define CARAM_SPEECH_PARTITIONED_ENGINE_H_

/**
 * @file
 * The paper's "partitioned database approach" (section 4.2) in full:
 * the Sphinx trigram store is split by entry length into separate
 * CA-RAM databases (the paper evaluates the 13..16-character partition,
 * 40% of the entries).  Shorter partitions store narrower keys, so the
 * same row width holds more keys per bucket -- the capacity advantage
 * of partitioning.
 *
 * All partitions live in one CaRamSubsystem behind per-partition
 * virtual ports ("The CA-RAM slices in the subsystem can each serve a
 * different database").
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/subsystem.h"

namespace caram::speech {

/** One length partition of the trigram store. */
struct TrigramPartitionSpec
{
    /** Entries up to this many characters land here (the previous
     *  partition's bound is the lower limit). */
    unsigned maxChars;
    unsigned indexBits = 12;
    unsigned slotsPerBucket = 96;
    unsigned physicalSlices = 1;
    core::Arrangement arrangement = core::Arrangement::Horizontal;
};

/** A length-partitioned trigram lookup engine. */
class PartitionedTrigramEngine
{
  public:
    /**
     * @param partitions ascending maxChars bounds; the last bound is
     *                   the longest supported entry
     */
    explicit PartitionedTrigramEngine(
        std::vector<TrigramPartitionSpec> partitions);

    /** Insert an entry into its length partition. */
    bool insert(const std::string &text, uint32_t score);

    /** Look an entry up (one access in one partition). */
    std::optional<uint32_t> lookup(const std::string &text);

    /** Remove an entry. */
    bool erase(const std::string &text);

    std::size_t partitionCount() const { return specs.size(); }

    /** Partition index for an entry of @p chars characters. */
    std::size_t partitionOf(std::size_t chars) const;

    /** The database behind partition @p index. */
    core::Database &partition(std::size_t index);

    /** Entries per partition. */
    std::vector<uint64_t> partitionSizes() const;

    uint64_t size() const;

    /** Aggregate area including all partitions. */
    double totalAreaUm2() const { return subsystem.totalAreaUm2(); }

  private:
    /** Key width (bits) of partition @p index. */
    unsigned keyBitsOf(std::size_t index) const;

    std::vector<TrigramPartitionSpec> specs;
    core::CaRamSubsystem subsystem;
};

} // namespace caram::speech

#endif // CARAM_SPEECH_PARTITIONED_ENGINE_H_
