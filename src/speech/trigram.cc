#include "speech/trigram.h"

// TrigramEntry is header-only; this file anchors the library target.
