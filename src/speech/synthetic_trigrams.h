#ifndef CARAM_SPEECH_SYNTHETIC_TRIGRAMS_H_
#define CARAM_SPEECH_SYNTHETIC_TRIGRAMS_H_

/**
 * @file
 * Deterministic synthetic stand-in for the CMU-Sphinx III trigram
 * database (paper section 4.2).  The paper's data set is the
 * 13..16-character partition: 5,385,231 entries out of 13,459,881
 * (about 40%).
 *
 * Construction (see DESIGN.md for the substitution argument): a
 * ~60,000-word vocabulary of naturally distributed word lengths is
 * generated once; distinct word triples are enumerated through a
 * bijective Weyl mapping of a counter onto the triple space, keeping
 * those whose space-joined string is 13..16 characters until the target
 * count is reached.  Every entry is therefore distinct by construction
 * (distinct triples give distinct space-separated strings) and the
 * whole database is reproducible from the seed without storing the
 * strings.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/key.h"
#include "speech/trigram.h"

namespace caram::speech {

/** Generator knobs. */
struct SyntheticTrigramConfig
{
    /** Entries with 13..16 characters (the paper's partition size). */
    std::size_t entryCount = 5385231;

    unsigned minChars = 13;
    unsigned maxChars = 16;

    /** Vocabulary size ("a system with a ~60,000-word vocabulary"). */
    unsigned vocabularySize = 60000;

    uint64_t seed = 0x5f33c4ull;
};

/** The synthetic trigram database; entries materialize on demand.
 *  Entries longer than 16 characters are allowed (maxChars up to 32,
 *  the real Sphinx store has them); key() serves only entries that fit
 *  the 128-bit trigram key -- longer ones are handled by the
 *  length-partitioned engine with wider keys. */
class SyntheticTrigramDb
{
  public:
    explicit SyntheticTrigramDb(const SyntheticTrigramConfig &config);

    std::size_t size() const { return tripleIds.size(); }

    /** Entry text (three space-separated words). */
    std::string text(std::size_t i) const;

    /** 128-bit fixed-width string key of entry @p i. */
    Key key(std::size_t i) const;

    /** Quantized log-probability payload of entry @p i. */
    uint32_t score(std::size_t i) const;

    TrigramEntry entry(std::size_t i) const;

    const std::vector<std::string> &vocabulary() const { return vocab; }

    const SyntheticTrigramConfig &config() const { return cfg; }

  private:
    std::string tripleText(uint64_t triple_id) const;

    SyntheticTrigramConfig cfg;
    std::vector<std::string> vocab;
    std::vector<uint64_t> tripleIds; ///< valid triples, in stream order
};

} // namespace caram::speech

#endif // CARAM_SPEECH_SYNTHETIC_TRIGRAMS_H_
