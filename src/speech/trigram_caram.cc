#include "speech/trigram_caram.h"

#include <algorithm>

#include "common/logging.h"
#include "hash/djb.h"

namespace caram::speech {

TrigramCaRamMapper::TrigramCaRamMapper(const SyntheticTrigramDb &db)
    : db_(&db)
{
}

TrigramMappingResult
TrigramCaRamMapper::map(const TrigramDesignSpec &spec) const
{
    core::SliceConfig shape;
    shape.indexBits = spec.indexBitsPerSlice;
    shape.logicalKeyBits = trigramKeyBits;
    shape.ternary = false; // "Ternary searching is not required"
    shape.slotsPerBucket = spec.slotsPerSlice;
    shape.dataBits = spec.dataBits;
    shape.probe = core::ProbePolicy::Linear;
    shape.maxProbeDistance =
        static_cast<unsigned>(shape.rows() - 1);
    shape.lpm = false;

    core::DatabaseConfig db_cfg;
    db_cfg.name = "trigram-" + spec.label;
    db_cfg.sliceShape = shape;
    db_cfg.physicalSlices = spec.slices;
    db_cfg.arrangement = spec.arrangement;
    db_cfg.indexFactory = [](const core::SliceConfig &eff)
        -> std::unique_ptr<hash::IndexGenerator> {
        // withBuckets handles the non-power-of-two row counts of
        // odd vertical arrangements (e.g. design B's five slices).
        return std::make_unique<hash::DjbIndex>(
            hash::DjbIndex::withBuckets(eff.rows()));
    };

    TrigramMappingResult out;
    out.label = spec.label;
    out.effective = db_cfg.effectiveConfig();
    out.db = std::make_unique<core::Database>(db_cfg);
    out.entries = db_->size();

    for (std::size_t i = 0; i < db_->size(); ++i) {
        const core::Record rec{db_->key(i), db_->score(i)};
        if (!out.db->insert(rec))
            ++out.failedEntries;
    }

    out.stats = out.db->loadStats();
    out.loadFactor = out.stats.loadFactor();
    out.overflowingBucketFraction = out.stats.overflowingBucketFraction();
    out.spilledRecordFraction = out.stats.spilledRecordFraction();
    out.amal = out.stats.amalUniform();
    return out;
}

} // namespace caram::speech
