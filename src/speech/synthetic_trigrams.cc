#include "speech/synthetic_trigrams.h"

#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace caram::speech {

namespace {

/** Word-length distribution (lengths 2..10), English-like. */
constexpr unsigned minWordLen = 2;
constexpr double wordLenWeights[] = {0.05, 0.12, 0.18, 0.19, 0.16,
                                     0.12, 0.09, 0.06, 0.03};

/** Letter frequencies (a..z), rough English distribution. */
constexpr double letterWeights[26] = {
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4,
    6.7, 7.5, 1.9, 0.10, 6.0, 6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074};

uint64_t
gcd64(uint64_t a, uint64_t b)
{
    while (b != 0) {
        const uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

SyntheticTrigramDb::SyntheticTrigramDb(const SyntheticTrigramConfig &config)
    : cfg(config)
{
    if (cfg.vocabularySize < 3)
        fatal("vocabulary too small");
    if (cfg.minChars > cfg.maxChars || cfg.maxChars > 32)
        fatal("trigram length window must fit 32 characters");

    caram::Rng rng(cfg.seed);

    // Sampling tables.
    double len_total = 0.0;
    double len_cdf[9];
    for (unsigned i = 0; i < 9; ++i) {
        len_total += wordLenWeights[i];
        len_cdf[i] = len_total;
    }
    double letter_total = 0.0;
    double letter_cdf[26];
    for (unsigned i = 0; i < 26; ++i) {
        letter_total += letterWeights[i];
        letter_cdf[i] = letter_total;
    }

    // Vocabulary of distinct words.
    std::unordered_set<std::string> seen;
    vocab.reserve(cfg.vocabularySize);
    while (vocab.size() < cfg.vocabularySize) {
        const double ul = rng.uniform() * len_total;
        unsigned len = minWordLen;
        for (unsigned i = 0; i < 9; ++i) {
            if (ul < len_cdf[i]) {
                len = minWordLen + i;
                break;
            }
        }
        std::string word;
        word.reserve(len);
        for (unsigned c = 0; c < len; ++c) {
            const double uc = rng.uniform() * letter_total;
            unsigned letter = 0;
            for (unsigned i = 0; i < 26; ++i) {
                if (uc < letter_cdf[i]) {
                    letter = i;
                    break;
                }
            }
            word.push_back(static_cast<char>('a' + letter));
        }
        if (seen.insert(word).second)
            vocab.push_back(std::move(word));
    }

    // Bijective Weyl walk over the triple space: id = (c * step) mod V^3
    // with gcd(step, V^3) = 1, so distinct counters give distinct
    // triples and thus distinct space-joined strings.
    const uint64_t v = vocab.size();
    const uint64_t space = v * v * v;
    uint64_t step = (0x9e3779b97f4a7c15ull ^ cfg.seed) % space;
    if (step == 0)
        step = 1;
    while (gcd64(step, space) != 1)
        ++step;

    // Precompute word lengths for the cheap length filter.
    std::vector<uint8_t> word_len(vocab.size());
    for (std::size_t i = 0; i < vocab.size(); ++i)
        word_len[i] = static_cast<uint8_t>(vocab[i].size());

    tripleIds.reserve(cfg.entryCount);
    uint64_t counter = 0;
    while (tripleIds.size() < cfg.entryCount) {
        if (counter >= space)
            fatal("triple space exhausted before reaching the target "
                  "entry count");
        const uint64_t id = static_cast<uint64_t>(
            (static_cast<unsigned __int128>(counter) * step) % space);
        ++counter;
        const uint64_t w1 = id % v;
        const uint64_t w2 = (id / v) % v;
        const uint64_t w3 = id / (v * v);
        const unsigned chars =
            word_len[w1] + word_len[w2] + word_len[w3] + 2;
        if (chars < cfg.minChars || chars > cfg.maxChars)
            continue;
        tripleIds.push_back(id);
    }
}

std::string
SyntheticTrigramDb::tripleText(uint64_t triple_id) const
{
    const uint64_t v = vocab.size();
    const uint64_t w1 = triple_id % v;
    const uint64_t w2 = (triple_id / v) % v;
    const uint64_t w3 = triple_id / (v * v);
    std::string out = vocab[w1];
    out.push_back(' ');
    out += vocab[w2];
    out.push_back(' ');
    out += vocab[w3];
    return out;
}

std::string
SyntheticTrigramDb::text(std::size_t i) const
{
    return tripleText(tripleIds.at(i));
}

Key
SyntheticTrigramDb::key(std::size_t i) const
{
    return Key::fromString(text(i), trigramKeyBits);
}

uint32_t
SyntheticTrigramDb::score(std::size_t i) const
{
    // Deterministic quantized "log probability" derived from the id.
    uint64_t x = tripleIds.at(i) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<uint32_t>(x >> 32);
}

TrigramEntry
SyntheticTrigramDb::entry(std::size_t i) const
{
    return TrigramEntry{text(i), score(i)};
}

} // namespace caram::speech
