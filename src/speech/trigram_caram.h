#ifndef CARAM_SPEECH_TRIGRAM_CARAM_H_
#define CARAM_SPEECH_TRIGRAM_CARAM_H_

/**
 * @file
 * CA-RAM data mapping for trigram lookup (paper section 4.2): 128-bit
 * binary string keys, the DJB hash ("this method has been also used in
 * the software hashing technique in Sphinx"), 96 keys per bucket, 2^14
 * buckets per slice, linear probing for overflows.
 */

#include <memory>
#include <string>

#include "core/database.h"
#include "speech/synthetic_trigrams.h"

namespace caram::speech {

/** One row of the paper's Table 3: a trigram design point. */
struct TrigramDesignSpec
{
    std::string label;               ///< "A".."D"
    unsigned indexBitsPerSlice = 14; ///< R (per slice, fixed to 14)
    unsigned slotsPerSlice = 96;     ///< keys per bucket per slice
    unsigned slices = 4;
    core::Arrangement arrangement = core::Arrangement::Vertical;
    unsigned dataBits = 32;          ///< quantized score payload
};

/** Measured results for one design (Table 3 columns + Figure 7). */
struct TrigramMappingResult
{
    std::string label;
    core::SliceConfig effective;
    std::unique_ptr<core::Database> db;

    uint64_t entries = 0;
    uint64_t failedEntries = 0;
    double loadFactor = 0.0;
    double overflowingBucketFraction = 0.0;
    double spilledRecordFraction = 0.0;
    double amal = 0.0;

    core::LoadStats stats; ///< stats.homeDemand is Figure 7's histogram
};

/** Maps the trigram database onto CA-RAM design points. */
class TrigramCaRamMapper
{
  public:
    explicit TrigramCaRamMapper(const SyntheticTrigramDb &db);

    TrigramMappingResult map(const TrigramDesignSpec &spec) const;

  private:
    const SyntheticTrigramDb *db_;
};

} // namespace caram::speech

#endif // CARAM_SPEECH_TRIGRAM_CARAM_H_
