#ifndef CARAM_SPEECH_TRIGRAM_H_
#define CARAM_SPEECH_TRIGRAM_H_

/**
 * @file
 * Trigram entries for the speech-recognition language-model lookup
 * application (paper section 4.2).  An entry is a space-separated
 * three-word string of up to 16 characters (the paper partitions the
 * Sphinx trigram database and studies the 13..16-character slice),
 * keyed as a 128-bit fixed-width string key.
 */

#include <cstdint>
#include <string>

#include "common/key.h"

namespace caram::speech {

/** Key width for 16-character trigram strings: 16 * 8 = 128 bits. */
constexpr unsigned trigramKeyBits = 128;

/** One language-model entry. */
struct TrigramEntry
{
    std::string text;   ///< "wordA wordB wordC", 13..16 chars
    uint32_t score = 0; ///< quantized log-probability payload

    /** 128-bit fixed-width string key (zero padded). */
    Key toKey() const { return Key::fromString(text, trigramKeyBits); }
};

} // namespace caram::speech

#endif // CARAM_SPEECH_TRIGRAM_H_
