#include "speech/partitioned_engine.h"

#include "common/logging.h"
#include "common/strings.h"
#include "hash/djb.h"

namespace caram::speech {

PartitionedTrigramEngine::PartitionedTrigramEngine(
    std::vector<TrigramPartitionSpec> partitions)
    : specs(std::move(partitions))
{
    if (specs.empty())
        fatal("partitioned engine needs at least one partition");
    unsigned prev = 0;
    for (const TrigramPartitionSpec &spec : specs) {
        if (spec.maxChars <= prev)
            fatal("partition bounds must be strictly ascending");
        if (spec.maxChars * 8 > Key::kMaxKeyBits)
            fatal("partition key width exceeds the maximum key width");
        prev = spec.maxChars;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const TrigramPartitionSpec &spec = specs[i];
        core::DatabaseConfig cfg;
        cfg.name = strprintf("trigram<=%u", spec.maxChars);
        cfg.sliceShape.indexBits = spec.indexBits;
        cfg.sliceShape.logicalKeyBits = keyBitsOf(i);
        cfg.sliceShape.ternary = false;
        cfg.sliceShape.slotsPerBucket = spec.slotsPerBucket;
        cfg.sliceShape.dataBits = 32;
        cfg.sliceShape.probe = core::ProbePolicy::Linear;
        cfg.sliceShape.maxProbeDistance =
            static_cast<unsigned>(cfg.sliceShape.rows() - 1);
        cfg.physicalSlices = spec.physicalSlices;
        cfg.arrangement = spec.arrangement;
        cfg.indexFactory = [](const core::SliceConfig &eff)
            -> std::unique_ptr<hash::IndexGenerator> {
            return std::make_unique<hash::DjbIndex>(
                hash::DjbIndex::withBuckets(eff.rows()));
        };
        subsystem.addDatabase(cfg);
    }
}

unsigned
PartitionedTrigramEngine::keyBitsOf(std::size_t index) const
{
    return specs[index].maxChars * 8;
}

std::size_t
PartitionedTrigramEngine::partitionOf(std::size_t chars) const
{
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (chars <= specs[i].maxChars)
            return i;
    }
    fatal(strprintf("entry of %zu characters exceeds the longest "
                    "partition (%u)",
                    chars, specs.back().maxChars));
}

core::Database &
PartitionedTrigramEngine::partition(std::size_t index)
{
    return subsystem.database(static_cast<unsigned>(index));
}

bool
PartitionedTrigramEngine::insert(const std::string &text, uint32_t score)
{
    const std::size_t p = partitionOf(text.size());
    return partition(p).insert(
        core::Record{Key::fromString(text, keyBitsOf(p)), score});
}

std::optional<uint32_t>
PartitionedTrigramEngine::lookup(const std::string &text)
{
    const std::size_t p = partitionOf(text.size());
    const auto r =
        partition(p).search(Key::fromString(text, keyBitsOf(p)));
    if (!r.hit)
        return std::nullopt;
    return static_cast<uint32_t>(r.data);
}

bool
PartitionedTrigramEngine::erase(const std::string &text)
{
    const std::size_t p = partitionOf(text.size());
    return partition(p).erase(Key::fromString(text, keyBitsOf(p))) > 0;
}

std::vector<uint64_t>
PartitionedTrigramEngine::partitionSizes() const
{
    std::vector<uint64_t> sizes;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        sizes.push_back(const_cast<PartitionedTrigramEngine *>(this)
                            ->partition(i)
                            .size());
    }
    return sizes;
}

uint64_t
PartitionedTrigramEngine::size() const
{
    uint64_t total = 0;
    for (uint64_t s : partitionSizes())
        total += s;
    return total;
}

} // namespace caram::speech
