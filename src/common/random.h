#ifndef CARAM_COMMON_RANDOM_H_
#define CARAM_COMMON_RANDOM_H_

/**
 * @file
 * Deterministic pseudo-random number generation and a Zipf sampler.
 *
 * Every stochastic component in this repository draws from Rng seeded
 * explicitly so that tests, tables and figures are reproducible run to run.
 */

#include <cstdint>
#include <vector>

namespace caram {

/**
 * xoshiro256** PRNG with a SplitMix64 seeding sequence.  Small, fast and
 * deterministic across platforms (unlike std::mt19937 distributions).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit draw. */
    uint64_t next64();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t inRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s[4];
};

/**
 * Zipf(s) sampler over ranks {0, 1, ..., n-1} using a precomputed CDF and
 * binary search.  Rank 0 is the most popular item.  Suitable for the
 * vocabulary and traffic-skew sizes used in this repository (up to a few
 * million ranks).
 */
class ZipfSampler
{
  public:
    /**
     * @param n        number of ranks
     * @param exponent Zipf exponent s (1.0 is the classic harmonic law)
     */
    ZipfSampler(std::size_t n, double exponent);

    /** Draw a rank according to the Zipf law. */
    std::size_t operator()(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

/**
 * A Zipf-skewed stream over items {0, ..., n-1}: popularity ranks are
 * assigned to items (identity by default, or a seeded random
 * permutation -- the rank/permutation pattern originally hand-rolled in
 * ip::IpCaRamMapper), and next() draws items with Zipf(s) popularity,
 * spending exactly one uniform draw per sample.  One audited
 * implementation for every bench, test and traffic generator that
 * needs skewed key traffic, bit-identical to both prior ad-hoc copies:
 * the unshuffled form draws the same stream as a bare ZipfSampler, and
 * weights() reproduces IpCaRamMapper's per-item access weights word
 * for word.
 */
class ZipfStream
{
  public:
    /** Ranks assigned in order: item 0 is the most popular. */
    ZipfStream(std::size_t n, double exponent);

    /** Ranks assigned by a Fisher-Yates shuffle seeded with @p seed,
     *  so the hot items scatter across the key space. */
    ZipfStream(std::size_t n, double exponent, uint64_t seed);

    /** Draw an item according to its rank's Zipf popularity (one
     *  rng.uniform() per call). */
    std::size_t next(Rng &rng) const;

    /** Probability mass of item @p item (pmf of its rank). */
    double weight(std::size_t item) const { return weights_[item]; }

    /** Per-item access weights, parallel to the item indices. */
    const std::vector<double> &weights() const { return weights_; }

    std::size_t size() const { return weights_.size(); }

  private:
    ZipfSampler sampler;
    /** rank -> item; empty = identity (item == rank). */
    std::vector<std::size_t> itemOfRank;
    std::vector<double> weights_;
};

} // namespace caram

#endif // CARAM_COMMON_RANDOM_H_
