#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

#include "common/logging.h"

namespace caram {

void
Summary::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    totalSq += x * x;
}

double
Summary::mean() const
{
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double
Summary::min() const
{
    return n == 0 ? 0.0 : lo;
}

double
Summary::max() const
{
    return n == 0 ? 0.0 : hi;
}

double
Summary::stddev() const
{
    if (n == 0)
        return 0.0;
    const double m = mean();
    const double var = totalSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Histogram::add(uint64_t v, uint64_t weight)
{
    if (v >= counts.size())
        counts.resize(v + 1, 0);
    counts[v] += weight;
    total += weight;
}

void
Histogram::remove(uint64_t v, uint64_t weight)
{
    if (v >= counts.size() || counts[v] < weight || total < weight)
        panic("histogram remove of nonexistent observation");
    counts[v] -= weight;
    total -= weight;
}

uint64_t
Histogram::at(uint64_t v) const
{
    return v < counts.size() ? counts[v] : 0;
}

uint64_t
Histogram::maxValue() const
{
    for (std::size_t i = counts.size(); i-- > 0;) {
        if (counts[i] != 0)
            return i;
    }
    return 0;
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    double weighted = 0.0;
    for (std::size_t v = 0; v < counts.size(); ++v)
        weighted += static_cast<double>(v) * static_cast<double>(counts[v]);
    return weighted / static_cast<double>(total);
}

double
Histogram::fractionAbove(uint64_t v) const
{
    if (total == 0)
        return 0.0;
    uint64_t above = 0;
    for (std::size_t i = v + 1; i < counts.size(); ++i)
        above += counts[i];
    return static_cast<double>(above) / static_cast<double>(total);
}

uint64_t
Histogram::excessAbove(uint64_t v) const
{
    uint64_t excess = 0;
    for (std::size_t i = v + 1; i < counts.size(); ++i)
        excess += (i - v) * counts[i];
    return excess;
}

void
Histogram::printAscii(std::ostream &os, uint64_t bin_width,
                      unsigned max_bar) const
{
    assert(bin_width > 0);
    if (counts.empty()) {
        os << "(empty histogram)\n";
        return;
    }
    // Group values into bins of bin_width.
    const uint64_t max_v = maxValue();
    const uint64_t nbins = max_v / bin_width + 1;
    std::vector<uint64_t> grouped(nbins, 0);
    for (std::size_t v = 0; v < counts.size(); ++v)
        grouped[v / bin_width] += counts[v];
    const uint64_t peak = *std::max_element(grouped.begin(), grouped.end());
    for (uint64_t b = 0; b < nbins; ++b) {
        const uint64_t lo = b * bin_width;
        const uint64_t hi = lo + bin_width - 1;
        const unsigned bar = peak == 0
            ? 0
            : static_cast<unsigned>(grouped[b] * max_bar / peak);
        os << "  [";
        if (bin_width == 1)
            os << lo;
        else
            os << lo << "-" << hi;
        os << "]\t" << grouped[b] << "\t" << std::string(bar, '#') << "\n";
    }
}

TextTable::TextTable(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != rows.front().size())
        panic("TextTable row arity mismatch");
    rows.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(rows.front().size(), 0);
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "  ";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            os << rows[r][c]
               << std::string(width[c] - rows[r][c].size() + 2, ' ');
        }
        os << "\n";
        if (r == 0) {
            std::size_t line = 2;
            for (auto w : width)
                line += w + 2;
            os << "  " << std::string(line - 2, '-') << "\n";
        }
    }
}

} // namespace caram
