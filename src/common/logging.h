#ifndef CARAM_COMMON_LOGGING_H_
#define CARAM_COMMON_LOGGING_H_

/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * fatal()  -- the condition is the *user's* fault (bad configuration,
 *             invalid arguments).  Throws caram::FatalError so that a host
 *             application (or a test) can recover.
 * panic()  -- the condition is a library bug that should never happen
 *             regardless of user input.  Aborts.
 * warn()   -- something is suspicious but execution can continue.
 * inform() -- plain status output.
 */

#include <stdexcept>
#include <string>

namespace caram {

/** Exception thrown by fatal() for unrecoverable user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Report an unrecoverable user error; throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal library bug; prints the message and aborts. */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (benchmarks use this). */
void setQuiet(bool quiet);

} // namespace caram

#endif // CARAM_COMMON_LOGGING_H_
