#ifndef CARAM_COMMON_STATS_H_
#define CARAM_COMMON_STATS_H_

/**
 * @file
 * Lightweight statistics containers used by the simulator, the evaluation
 * tables and the figures: a running summary, an integer histogram, and a
 * column-aligned table printer for bench output.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace caram {

/** Running mean / min / max / stddev over a stream of samples. */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    uint64_t count() const { return n; }
    double mean() const;
    double min() const;
    double max() const;
    /** Population standard deviation. */
    double stddev() const;
    double sum() const { return total; }

  private:
    uint64_t n = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Histogram over small non-negative integer values (e.g., bucket
 * occupancies).  Bins grow on demand.
 */
class Histogram
{
  public:
    /** Record one observation of value @p v. */
    void add(uint64_t v, uint64_t weight = 1);

    /** Remove @p weight observations of value @p v (must exist). */
    void remove(uint64_t v, uint64_t weight = 1);

    /** Number of observations of exactly @p v. */
    uint64_t at(uint64_t v) const;

    /** Largest value observed (0 if empty). */
    uint64_t maxValue() const;

    /** Total number of observations. */
    uint64_t totalCount() const { return total; }

    /** Mean of the observed values. */
    double mean() const;

    /** Fraction of observations strictly greater than @p v. */
    double fractionAbove(uint64_t v) const;

    /** Sum over all observations of max(value - v, 0). */
    uint64_t excessAbove(uint64_t v) const;

    const std::vector<uint64_t> &bins() const { return counts; }

    /**
     * Render an ASCII bar chart, one row per group of @p bin_width values,
     * to @p os.  Used to "draw" the paper's distribution figures in text.
     */
    void printAscii(std::ostream &os, uint64_t bin_width = 1,
                    unsigned max_bar = 60) const;

  private:
    std::vector<uint64_t> counts;
    uint64_t total = 0;
};

/**
 * Column-aligned text table, used by every bench binary to print the
 * paper's tables next to our measured values.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Print with padded columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace caram

#endif // CARAM_COMMON_STATS_H_
