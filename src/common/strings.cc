#include "common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace caram {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
withCommas(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(digits[i]);
        const std::size_t remaining = n - 1 - i;
        if (remaining != 0 && remaining % 3 == 0)
            out.push_back(',');
    }
    return out;
}

std::string
fixed(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
percent(double fraction, int decimals)
{
    return strprintf("%.*f%%", decimals, fraction * 100.0);
}

} // namespace caram
