#include "common/cpuid.h"

#include <atomic>
#include <cstdlib>
#include <ostream>

#include "common/logging.h"
#include "common/strings.h"

namespace caram::simd {

namespace {

/** Override slot: -1 = none, else static_cast<int>(MatchKernel). */
std::atomic<int> g_override{-1};

bool
cpuSupports(MatchKernel kernel)
{
#if defined(CARAM_X86_SIMD)
    switch (kernel) {
      case MatchKernel::Scalar:
        return true;
      case MatchKernel::Avx2:
        return __builtin_cpu_supports("avx2");
      case MatchKernel::Avx512:
        // The 512-bit kernel uses only AVX-512F instructions (gathers,
        // variable shifts, mask compares).
        return __builtin_cpu_supports("avx512f");
    }
    return false;
#else
    return kernel == MatchKernel::Scalar;
#endif
}

/** CARAM_MATCH_KERNEL parsed fresh on every call -- a function-local
 *  cache would pin the first value seen and silently ignore later
 *  environment changes (a MatchProcessor built after a setenv() kept
 *  the stale kernel).  nullopt = unset/auto/garbage; garbage warns
 *  once per process, not once per slice construction. */
std::optional<MatchKernel>
envKernel()
{
    const char *env = std::getenv("CARAM_MATCH_KERNEL");
    if (!env)
        return std::nullopt;
    const std::optional<MatchKernel> k = parseKernelName(env);
    if (!k && std::string(env) != "auto") {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true, std::memory_order_relaxed))
            warn(strprintf("CARAM_MATCH_KERNEL=%s not understood; "
                           "using auto selection",
                           env));
    }
    return k;
}

MatchKernel
clampToAvailable(MatchKernel wanted)
{
    if (kernelAvailable(wanted))
        return wanted;
    const MatchKernel best = bestAvailableKernel();
    // Once per process, not per construction: activeMatchKernel() runs
    // for every MatchProcessor (every slice), and a forced-but-missing
    // kernel would otherwise spam one warning per database.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed))
        warn(strprintf("match kernel %s unavailable on this host/build; "
                       "falling back to %s",
                       kernelName(wanted), kernelName(best)));
    return best;
}

} // namespace

const char *
kernelName(MatchKernel kernel)
{
    switch (kernel) {
      case MatchKernel::Scalar:
        return "scalar";
      case MatchKernel::Avx2:
        return "avx2";
      case MatchKernel::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::ostream &
operator<<(std::ostream &os, MatchKernel kernel)
{
    return os << kernelName(kernel);
}

std::optional<MatchKernel>
parseKernelName(const std::string &name)
{
    if (name == "scalar")
        return MatchKernel::Scalar;
    if (name == "avx2")
        return MatchKernel::Avx2;
    if (name == "avx512")
        return MatchKernel::Avx512;
    return std::nullopt;
}

bool
kernelAvailable(MatchKernel kernel)
{
    return cpuSupports(kernel);
}

MatchKernel
bestAvailableKernel()
{
    if (cpuSupports(MatchKernel::Avx512))
        return MatchKernel::Avx512;
    if (cpuSupports(MatchKernel::Avx2))
        return MatchKernel::Avx2;
    return MatchKernel::Scalar;
}

MatchKernel
activeMatchKernel()
{
    const int forced = g_override.load(std::memory_order_acquire);
    if (forced >= 0)
        return clampToAvailable(static_cast<MatchKernel>(forced));
    if (const auto env = envKernel())
        return clampToAvailable(*env);
    return bestAvailableKernel();
}

void
setMatchKernelOverride(std::optional<MatchKernel> kernel)
{
    g_override.store(kernel ? static_cast<int>(*kernel) : -1,
                     std::memory_order_release);
}

} // namespace caram::simd
