#ifndef CARAM_COMMON_KEY_H_
#define CARAM_COMMON_KEY_H_

/**
 * @file
 * Search keys, possibly ternary.
 *
 * A Key is a fixed-width bit string of up to kMaxKeyBits bits with an
 * associated care mask: a care bit of 1 means the corresponding value bit
 * is specified; 0 means don't care ("X").  Fully specified keys (all-ones
 * care mask) are ordinary binary keys.
 *
 * Bit numbering: bit j (LSB numbering) of the key is bit (j % 64) of
 * word (j / 64).  "MSB position p" refers to bit (width-1-p); position 0
 * is the first bit on the wire in the networking convention.
 *
 * Matching follows the paper's extended single-bit comparator
 * (Figure 4(b)): a bit position matches if either side's care bit is 0
 * (mask inputs Mi / TMi) or the value bits agree.
 */

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace caram {

/** A ternary search/record key of up to kMaxKeyBits bits. */
class Key
{
  public:
    static constexpr unsigned kMaxKeyBits = 256;
    static constexpr unsigned kWords = kMaxKeyBits / 64;

    /** An empty (zero-width) key. */
    Key() = default;

    /** An all-zero, fully specified key of @p bits bits. */
    explicit Key(unsigned bits);

    /** A fully specified key from the low @p bits bits of @p value. */
    static Key fromUint(uint64_t value, unsigned bits);

    /**
     * A ternary key from value/care words (64-bit granularity);
     * value bits outside the care mask are normalized to zero.
     */
    static Key ternary(uint64_t value, uint64_t care, unsigned bits);

    /**
     * A key of @p bits bits from packed little-endian value/care words
     * (word j holds bits [64j, 64j+64)).  Missing words are zero
     * padding; bits beyond the width and value bits outside the care
     * mask are normalized away.  This is the word-copy constructor the
     * storage decode path uses instead of per-bit assembly.
     */
    static Key fromWords(std::span<const uint64_t> value_words,
                         std::span<const uint64_t> care_words,
                         unsigned bits);

    /**
     * A fully specified key from a byte string: byte i occupies bits
     * [8i, 8i+8).  @p bits must be a multiple of 8 covering the string;
     * missing bytes are zero padding.
     */
    static Key fromBytes(std::span<const unsigned char> bytes,
                         unsigned bits);

    /** Convenience for ASCII string keys. */
    static Key fromString(const std::string &s, unsigned bits);

    /**
     * An IPv4-style prefix: the top @p prefix_len MSB positions of
     * @p value are specified, the rest are don't care.  @p bits is the
     * full key width (32 for IPv4).
     */
    static Key prefix(uint64_t value, unsigned prefix_len, unsigned bits);

    /**
     * A wide prefix from a big-endian byte string (e.g. a 16-byte IPv6
     * address): the top @p prefix_len MSB positions are specified, the
     * rest don't care.  @p bits must be a multiple of 8 covering the
     * bytes.
     */
    static Key prefixFromBytes(std::span<const unsigned char> bytes,
                               unsigned prefix_len, unsigned bits);

    unsigned bits() const { return width; }

    std::span<const uint64_t> valueWords() const;
    std::span<const uint64_t> careWords() const;

    /** The low 64 bits of the value. */
    uint64_t low64() const { return value[0]; }

    /** The low 64 bits of the care mask. */
    uint64_t careLow64() const { return care[0]; }

    /** Value bit at MSB position @p p. */
    bool valueBitAt(unsigned p) const;

    /** Care bit at MSB position @p p (true = specified). */
    bool careBitAt(unsigned p) const;

    /** Set value/care at MSB position @p p. */
    void setBitAt(unsigned p, bool value_bit, bool care_bit = true);

    /** True when every bit is specified. */
    bool fullySpecified() const;

    /** Number of specified bits. */
    unsigned carePopcount() const;

    /**
     * Ternary match between this (stored) key and a @p search key:
     * every bit position either agrees or is don't care on at least one
     * side (the paper's Mi / TMi extension).
     */
    bool matches(const Key &search) const;

    /** Exact equality of width, value and care mask. */
    bool operator==(const Key &other) const;
    bool operator!=(const Key &other) const { return !(*this == other); }

    /** Bit-string rendering, MSB first, 'X' for don't care. */
    std::string toString() const;

    /** Hash functor for unordered containers. */
    struct Hasher
    {
        std::size_t operator()(const Key &k) const;
    };

  private:
    void normalize();

    std::array<uint64_t, kWords> value{};
    std::array<uint64_t, kWords> care{};
    unsigned width = 0;
};

} // namespace caram

#endif // CARAM_COMMON_KEY_H_
