#include "common/random.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>

namespace caram {

namespace {

/** SplitMix64 step, used only to expand the seed. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Rng::next64()
{
    const uint64_t result = std::rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = std::rotl(s[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t draw;
    do {
        draw = next64();
    } while (draw >= limit);
    return draw % bound;
}

uint64_t
Rng::inRange(uint64_t lo, uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
{
    assert(n > 0);
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
        cdf[rank] = total;
    }
    for (auto &v : cdf)
        v /= total;
    cdf.back() = 1.0;
}

std::size_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(it - cdf.begin());
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    assert(rank < cdf.size());
    return rank == 0 ? cdf[0] : cdf[rank] - cdf[rank - 1];
}

ZipfStream::ZipfStream(std::size_t n, double exponent)
    : sampler(n, exponent)
{
    weights_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        weights_[i] = sampler.pmf(i);
}

ZipfStream::ZipfStream(std::size_t n, double exponent, uint64_t seed)
    : sampler(n, exponent)
{
    // The exact rank/permutation pattern IpCaRamMapper used: iota, a
    // backwards Fisher-Yates drawing rng.below(i), weights by the
    // permuted rank.  Kept draw-for-draw identical so the mapper's
    // tables and figures do not move.
    Rng rng(seed);
    std::vector<std::size_t> ranks(n);
    std::iota(ranks.begin(), ranks.end(), 0);
    for (std::size_t i = n; i > 1; --i)
        std::swap(ranks[i - 1], ranks[rng.below(i)]);
    weights_.resize(n);
    itemOfRank.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        weights_[i] = sampler.pmf(ranks[i]);
        itemOfRank[ranks[i]] = i;
    }
}

std::size_t
ZipfStream::next(Rng &rng) const
{
    const std::size_t rank = sampler(rng);
    return itemOfRank.empty() ? rank : itemOfRank[rank];
}

} // namespace caram
