#ifndef CARAM_COMMON_CPUID_H_
#define CARAM_COMMON_CPUID_H_

/**
 * @file
 * Runtime CPU-feature detection and match-kernel selection.
 *
 * The host-side match processor has three interchangeable comparator
 * kernels (see core/match_kernels.h): the portable scalar packed path,
 * an AVX2 variant comparing 4 slots of a bucket concurrently, and an
 * AVX-512 variant comparing 8.  Which one runs is decided here, once,
 * from three inputs in priority order:
 *
 *   1. a programmatic override (setMatchKernelOverride -- tests and the
 *      micro benchmark force specific kernels through this),
 *   2. the CARAM_MATCH_KERNEL environment variable
 *      ("scalar" | "avx2" | "avx512" | "auto"),
 *   3. CPU capability probing (best available kernel).
 *
 * A forced kernel the CPU cannot execute (or that was compiled out with
 * -DCARAM_SIMD=OFF) is clamped down to the best runnable one with a
 * warning rather than crashing: a config file shared between machines
 * must not take down the weaker host.
 *
 * The selection is sampled by MatchProcessor at construction, so
 * changing the override affects subsequently built slices, not live
 * ones -- which is exactly what the differential tests want (build a
 * slice per kernel, replay one stream through all of them).
 */

#include <iosfwd>
#include <optional>
#include <string>

namespace caram::simd {

/** The comparator kernels the match processor can dispatch to. */
enum class MatchKernel
{
    Scalar, ///< portable 64-bit packed path (always available)
    Avx2,   ///< 4 slots per pass, 256-bit gathers/compares
    Avx512, ///< 8 slots per pass, 512-bit gathers, mask registers
};

/** Human-readable kernel name ("scalar" / "avx2" / "avx512"). */
const char *kernelName(MatchKernel kernel);

/** Streams kernelName() (also names gtest parameterizations). */
std::ostream &operator<<(std::ostream &os, MatchKernel kernel);

/** Parse a kernel name; std::nullopt for "auto" or unknown strings. */
std::optional<MatchKernel> parseKernelName(const std::string &name);

/** True when the CPU can run @p kernel and it was compiled in. */
bool kernelAvailable(MatchKernel kernel);

/** The widest kernel this host can run (Scalar when SIMD is off). */
MatchKernel bestAvailableKernel();

/**
 * The kernel new MatchProcessors will use: the override if set, else
 * the CARAM_MATCH_KERNEL environment variable, else the best available
 * -- always clamped to an available kernel.
 */
MatchKernel activeMatchKernel();

/**
 * Force (or with std::nullopt, release) the kernel selection.  Takes
 * effect for MatchProcessors constructed afterwards.
 */
void setMatchKernelOverride(std::optional<MatchKernel> kernel);

} // namespace caram::simd

#endif // CARAM_COMMON_CPUID_H_
