#ifndef CARAM_COMMON_BITOPS_H_
#define CARAM_COMMON_BITOPS_H_

/**
 * @file
 * Small bit-manipulation helpers used across the CA-RAM model.
 */

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace caram {

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** A mask with the low @p n bits set (n in [0, 64]). */
constexpr uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/**
 * Extract bits [lo, lo+len) of @p v as an unsigned value
 * (bit 0 is the least significant bit).
 */
constexpr uint64_t
bits(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & maskBits(len);
}

/**
 * Gather the bits of @p v at the positions listed in @p positions into a
 * packed value: positions[0] becomes the most significant result bit.
 * This mirrors how a hard-wired bit-selection index generator taps a key
 * bus.  Positions index from the MSB of an @p width -bit key (position 0
 * is the key's first/most significant bit), matching the IP-prefix
 * convention where "bit 0" is the first address bit on the wire.
 */
inline uint64_t
gatherBitsMsb(uint64_t v, unsigned width, const std::vector<unsigned> &positions)
{
    uint64_t out = 0;
    for (unsigned pos : positions) {
        assert(pos < width);
        unsigned lsb_index = width - 1 - pos;
        out = (out << 1) | ((v >> lsb_index) & 1u);
    }
    return out;
}

/** Reverse the low @p n bits of @p v. */
constexpr uint64_t
reverseBits(uint64_t v, unsigned n)
{
    uint64_t out = 0;
    for (unsigned i = 0; i < n; ++i) {
        out = (out << 1) | ((v >> i) & 1u);
    }
    return out;
}

} // namespace caram

#endif // CARAM_COMMON_BITOPS_H_
