#include "common/key.h"

#include <bit>
#include <cassert>

#include "common/bitops.h"
#include "common/logging.h"

namespace caram {

namespace {

/** Words needed for @p bits bits. */
unsigned
wordsFor(unsigned bits)
{
    return static_cast<unsigned>(ceilDiv(bits, 64));
}

} // namespace

Key::Key(unsigned bits) : width(bits)
{
    if (bits > kMaxKeyBits)
        fatal("key width exceeds kMaxKeyBits");
    // Fully specified by default.
    for (unsigned w = 0; w * 64 < width; ++w) {
        const unsigned remaining = width - w * 64;
        care[w] = remaining >= 64 ? ~uint64_t{0} : maskBits(remaining);
    }
}

void
Key::normalize()
{
    // Zero value bits that are don't care or beyond the width so that
    // operator== and hashing are canonical.
    for (unsigned w = 0; w < kWords; ++w)
        value[w] &= care[w];
    const unsigned last = width == 0 ? 0 : (width - 1) / 64;
    for (unsigned w = last + 1; w < kWords; ++w) {
        value[w] = 0;
        care[w] = 0;
    }
    if (width % 64 != 0 && width != 0) {
        const uint64_t m = maskBits(width % 64);
        value[last] &= m;
        care[last] &= m;
    }
}

Key
Key::fromUint(uint64_t v, unsigned bits)
{
    if (bits == 0 || bits > 64)
        fatal("fromUint requires 1..64 bits");
    Key k(bits);
    k.value[0] = v;
    k.normalize();
    return k;
}

Key
Key::ternary(uint64_t v, uint64_t care_mask, unsigned bits)
{
    if (bits == 0 || bits > 64)
        fatal("ternary requires 1..64 bits");
    Key k(bits);
    k.value[0] = v;
    k.care[0] = care_mask;
    k.normalize();
    return k;
}

Key
Key::fromWords(std::span<const uint64_t> value_words,
               std::span<const uint64_t> care_words, unsigned bits)
{
    if (bits > kMaxKeyBits)
        fatal("key width exceeds kMaxKeyBits");
    Key k(bits);
    const unsigned used = wordsFor(bits);
    for (unsigned w = 0; w < used; ++w) {
        if (w < value_words.size())
            k.value[w] = value_words[w];
        if (w < care_words.size())
            k.care[w] = care_words[w];
        else
            k.care[w] = 0;
    }
    k.normalize();
    return k;
}

Key
Key::fromBytes(std::span<const unsigned char> bytes, unsigned bits)
{
    if (bits == 0 || bits > kMaxKeyBits || bits % 8 != 0)
        fatal("fromBytes requires a byte-multiple width");
    if (bytes.size() * 8 > bits)
        fatal("byte string longer than key width");
    Key k(bits);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const unsigned lo = static_cast<unsigned>(i) * 8;
        k.value[lo / 64] |= static_cast<uint64_t>(bytes[i]) << (lo % 64);
    }
    k.normalize();
    return k;
}

Key
Key::fromString(const std::string &s, unsigned bits)
{
    return fromBytes({reinterpret_cast<const unsigned char *>(s.data()),
                      s.size()},
                     bits);
}

Key
Key::prefix(uint64_t v, unsigned prefix_len, unsigned bits)
{
    if (bits == 0 || bits > 64 || prefix_len > bits)
        fatal("invalid prefix specification");
    const uint64_t care_mask =
        prefix_len == 0 ? 0 : maskBits(prefix_len) << (bits - prefix_len);
    return ternary(v, care_mask, bits);
}

Key
Key::prefixFromBytes(std::span<const unsigned char> bytes,
                     unsigned prefix_len, unsigned bits)
{
    if (bits == 0 || bits > kMaxKeyBits || bits % 8 != 0)
        fatal("prefixFromBytes requires a byte-multiple width");
    if (bytes.size() * 8 != bits)
        fatal("prefixFromBytes needs exactly bits/8 bytes");
    if (prefix_len > bits)
        fatal("prefix length exceeds the key width");
    Key k(bits);
    // Bytes are big-endian on the wire: byte 0 holds MSB positions
    // 0..7.  Clear everything, then set the specified positions.
    for (unsigned w = 0; w < kWords; ++w)
        k.care[w] = 0;
    for (unsigned p = 0; p < prefix_len; ++p) {
        const bool bit = (bytes[p / 8] >> (7 - p % 8)) & 1u;
        k.setBitAt(p, bit, true);
    }
    k.normalize();
    return k;
}

std::span<const uint64_t>
Key::valueWords() const
{
    return {value.data(), wordsFor(width == 0 ? 1 : width)};
}

std::span<const uint64_t>
Key::careWords() const
{
    return {care.data(), wordsFor(width == 0 ? 1 : width)};
}

bool
Key::valueBitAt(unsigned p) const
{
    assert(p < width);
    const unsigned j = width - 1 - p;
    return (value[j / 64] >> (j % 64)) & 1u;
}

bool
Key::careBitAt(unsigned p) const
{
    assert(p < width);
    const unsigned j = width - 1 - p;
    return (care[j / 64] >> (j % 64)) & 1u;
}

void
Key::setBitAt(unsigned p, bool value_bit, bool care_bit)
{
    assert(p < width);
    const unsigned j = width - 1 - p;
    const uint64_t m = uint64_t{1} << (j % 64);
    if (care_bit)
        care[j / 64] |= m;
    else
        care[j / 64] &= ~m;
    if (value_bit && care_bit)
        value[j / 64] |= m;
    else
        value[j / 64] &= ~m;
}

bool
Key::fullySpecified() const
{
    return carePopcount() == width;
}

unsigned
Key::carePopcount() const
{
    unsigned n = 0;
    for (unsigned w = 0; w < kWords; ++w)
        n += static_cast<unsigned>(std::popcount(care[w]));
    return n;
}

bool
Key::matches(const Key &search) const
{
    if (search.width != width)
        return false;
    for (unsigned w = 0; w < kWords; ++w) {
        // Positions where both sides care and values differ.
        const uint64_t both_care = care[w] & search.care[w];
        if ((value[w] ^ search.value[w]) & both_care)
            return false;
    }
    return true;
}

bool
Key::operator==(const Key &other) const
{
    return width == other.width && value == other.value &&
           care == other.care;
}

std::string
Key::toString() const
{
    std::string out;
    out.reserve(width);
    for (unsigned p = 0; p < width; ++p) {
        if (!careBitAt(p))
            out.push_back('X');
        else
            out.push_back(valueBitAt(p) ? '1' : '0');
    }
    return out;
}

std::size_t
Key::Hasher::operator()(const Key &k) const
{
    uint64_t h = 0x9e3779b97f4a7c15ull ^ k.bits();
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (unsigned w = 0; w < kWords; ++w) {
        mix(k.value[w]);
        mix(k.care[w]);
    }
    return static_cast<std::size_t>(h);
}

} // namespace caram
