#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace caram {

namespace {
bool quietFlag = false;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

} // namespace caram
