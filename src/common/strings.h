#ifndef CARAM_COMMON_STRINGS_H_
#define CARAM_COMMON_STRINGS_H_

/**
 * @file
 * printf-style string formatting helpers (libstdc++ in this toolchain
 * predates std::format).
 */

#include <string>

namespace caram {

/** printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format with thousands separators, e.g. 186760 -> "186,760". */
std::string withCommas(uint64_t v);

/** Format a double with @p decimals digits after the point. */
std::string fixed(double v, int decimals);

/** Format a ratio as a percentage string with @p decimals digits. */
std::string percent(double fraction, int decimals = 2);

} // namespace caram

#endif // CARAM_COMMON_STRINGS_H_
