#include "baseline/sorted_array.h"

#include <algorithm>

#include "common/logging.h"

namespace caram::baseline {

bool
keyLess(const Key &a, const Key &b)
{
    if (a.bits() != b.bits())
        return a.bits() < b.bits();
    const auto wa = a.valueWords();
    const auto wb = b.valueWords();
    for (std::size_t i = wa.size(); i-- > 0;) {
        if (wa[i] != wb[i])
            return wa[i] < wb[i];
    }
    return false;
}

void
SortedArray::add(const Key &key, uint64_t data)
{
    if (frozen)
        fatal("cannot add to a frozen sorted array");
    if (!key.fullySpecified())
        fatal("sorted array requires fully specified keys");
    entries.push_back(Entry{key, data});
}

void
SortedArray::freeze()
{
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return keyLess(a.key, b.key);
              });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const Entry &a, const Entry &b) {
                                  return a.key == b.key;
                              }),
                  entries.end());
    frozen = true;
}

std::optional<uint64_t>
SortedArray::find(const Key &key)
{
    if (!frozen)
        fatal("find() before freeze()");
    ++findCount;
    std::size_t lo = 0;
    std::size_t hi = entries.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++accesses;
        if (entries[mid].key == key)
            return entries[mid].data;
        if (keyLess(entries[mid].key, key))
            lo = mid + 1;
        else
            hi = mid;
    }
    return std::nullopt;
}

double
SortedArray::meanAccessesPerFind() const
{
    return findCount == 0
        ? 0.0
        : static_cast<double>(accesses) / static_cast<double>(findCount);
}

} // namespace caram::baseline
