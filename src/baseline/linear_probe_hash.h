#ifndef CARAM_BASELINE_LINEAR_PROBE_HASH_H_
#define CARAM_BASELINE_LINEAR_PROBE_HASH_H_

/**
 * @file
 * Open-addressing software hash table with one record per slot and
 * linear probing -- the S = 1 degenerate case of a CA-RAM bucket.
 * Contrast with CA-RAM's wide buckets: the same load factor costs far
 * more probes when each probe retrieves a single record.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/key.h"
#include "hash/index_generator.h"

namespace caram::baseline {

/** Open-addressing hash table (linear probing, no deletion tombstone
 *  compaction). */
class LinearProbeHashTable
{
  public:
    explicit LinearProbeHashTable(
        std::unique_ptr<hash::IndexGenerator> index_gen);

    /** Insert; returns false when the table is full. */
    bool insert(const Key &key, uint64_t data);

    /** Find; every probed slot counts as a memory access. */
    std::optional<uint64_t> find(const Key &key);

    bool erase(const Key &key);

    std::size_t size() const { return count; }
    uint64_t capacity() const { return slots.size(); }
    double loadFactor() const;

    uint64_t memoryAccesses() const { return accesses; }
    uint64_t finds() const { return findCount; }
    double meanAccessesPerFind() const;

  private:
    enum class State : uint8_t { Empty, Full, Tombstone };

    struct Slot
    {
        Key key;
        uint64_t data = 0;
        State state = State::Empty;
    };

    std::unique_ptr<hash::IndexGenerator> idxGen;
    std::vector<Slot> slots;
    std::size_t count = 0;
    uint64_t accesses = 0;
    uint64_t findCount = 0;
};

} // namespace caram::baseline

#endif // CARAM_BASELINE_LINEAR_PROBE_HASH_H_
