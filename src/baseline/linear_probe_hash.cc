#include "baseline/linear_probe_hash.h"

#include "common/logging.h"

namespace caram::baseline {

LinearProbeHashTable::LinearProbeHashTable(
    std::unique_ptr<hash::IndexGenerator> index_gen)
    : idxGen(std::move(index_gen))
{
    if (!idxGen)
        fatal("linear-probe hash table needs an index generator");
    slots.resize(idxGen->rowCount());
}

bool
LinearProbeHashTable::insert(const Key &key, uint64_t data)
{
    if (!key.fullySpecified())
        fatal("software hash table requires fully specified keys");
    const uint64_t n = slots.size();
    const uint64_t home = idxGen->index(key.valueWords(), key.bits());
    for (uint64_t d = 0; d < n; ++d) {
        Slot &slot = slots[(home + d) % n];
        if (slot.state == State::Full && slot.key == key) {
            slot.data = data;
            return true;
        }
        if (slot.state != State::Full) {
            slot.key = key;
            slot.data = data;
            slot.state = State::Full;
            ++count;
            return true;
        }
    }
    return false;
}

std::optional<uint64_t>
LinearProbeHashTable::find(const Key &key)
{
    ++findCount;
    const uint64_t n = slots.size();
    const uint64_t home = idxGen->index(key.valueWords(), key.bits());
    for (uint64_t d = 0; d < n; ++d) {
        const Slot &slot = slots[(home + d) % n];
        ++accesses;
        if (slot.state == State::Empty)
            return std::nullopt;
        if (slot.state == State::Full && slot.key == key)
            return slot.data;
    }
    return std::nullopt;
}

bool
LinearProbeHashTable::erase(const Key &key)
{
    const uint64_t n = slots.size();
    const uint64_t home = idxGen->index(key.valueWords(), key.bits());
    for (uint64_t d = 0; d < n; ++d) {
        Slot &slot = slots[(home + d) % n];
        if (slot.state == State::Empty)
            return false;
        if (slot.state == State::Full && slot.key == key) {
            slot.state = State::Tombstone;
            --count;
            return true;
        }
    }
    return false;
}

double
LinearProbeHashTable::loadFactor() const
{
    return slots.empty()
        ? 0.0
        : static_cast<double>(count) / static_cast<double>(slots.size());
}

double
LinearProbeHashTable::meanAccessesPerFind() const
{
    return findCount == 0
        ? 0.0
        : static_cast<double>(accesses) / static_cast<double>(findCount);
}

} // namespace caram::baseline
