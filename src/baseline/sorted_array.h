#ifndef CARAM_BASELINE_SORTED_ARRAY_H_
#define CARAM_BASELINE_SORTED_ARRAY_H_

/**
 * @file
 * Ordered-table binary search (paper section 2.1 lists it among the
 * software techniques CA-RAM replaces).  Every comparison touches one
 * record and counts as a memory access: O(log N) per lookup.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "common/key.h"

namespace caram::baseline {

/** Total order over fully specified keys (value words, MSB first). */
bool keyLess(const Key &a, const Key &b);

/** Immutable-after-build sorted array with binary search. */
class SortedArray
{
  public:
    /** Add a record (before freeze()). */
    void add(const Key &key, uint64_t data);

    /** Sort and deduplicate; must be called before find(). */
    void freeze();

    /** Binary search; counts one access per comparison. */
    std::optional<uint64_t> find(const Key &key);

    std::size_t size() const { return entries.size(); }
    uint64_t memoryAccesses() const { return accesses; }
    uint64_t finds() const { return findCount; }
    double meanAccessesPerFind() const;

  private:
    struct Entry
    {
        Key key;
        uint64_t data;
    };

    std::vector<Entry> entries;
    bool frozen = false;
    uint64_t accesses = 0;
    uint64_t findCount = 0;
};

} // namespace caram::baseline

#endif // CARAM_BASELINE_SORTED_ARRAY_H_
