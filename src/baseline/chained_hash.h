#ifndef CARAM_BASELINE_CHAINED_HASH_H_
#define CARAM_BASELINE_CHAINED_HASH_H_

/**
 * @file
 * Software hash table with chaining -- the conventional technique CA-RAM
 * hardens into hardware (paper section 2.1).  Every record touched
 * during a lookup counts as one memory access, making the
 * pointer-chasing cost visible next to CA-RAM's single-row accesses.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/key.h"
#include "hash/index_generator.h"

namespace caram::baseline {

/** Chained software hash table over fully specified keys. */
class ChainedHashTable
{
  public:
    /**
     * @param index_gen hash over key bits; its indexBits() sets the
     *                  bucket count
     */
    explicit ChainedHashTable(
        std::unique_ptr<hash::IndexGenerator> index_gen);

    /** Insert or overwrite. */
    void insert(const Key &key, uint64_t data);

    /** Find; counts chain nodes touched. */
    std::optional<uint64_t> find(const Key &key);

    bool erase(const Key &key);

    std::size_t size() const { return count; }
    uint64_t buckets() const { return chains.size(); }

    uint64_t memoryAccesses() const { return accesses; }
    uint64_t finds() const { return findCount; }
    double meanAccessesPerFind() const;

    /** Load factor: records per bucket. */
    double loadFactor() const;

  private:
    struct Node
    {
        Key key;
        uint64_t data;
    };

    uint64_t bucketOf(const Key &key) const;

    std::unique_ptr<hash::IndexGenerator> idxGen;
    std::vector<std::vector<Node>> chains;
    std::size_t count = 0;
    uint64_t accesses = 0;
    uint64_t findCount = 0;
};

} // namespace caram::baseline

#endif // CARAM_BASELINE_CHAINED_HASH_H_
