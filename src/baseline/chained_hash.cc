#include "baseline/chained_hash.h"

#include "common/logging.h"

namespace caram::baseline {

ChainedHashTable::ChainedHashTable(
    std::unique_ptr<hash::IndexGenerator> index_gen)
    : idxGen(std::move(index_gen))
{
    if (!idxGen)
        fatal("chained hash table needs an index generator");
    chains.resize(idxGen->rowCount());
}

uint64_t
ChainedHashTable::bucketOf(const Key &key) const
{
    return idxGen->index(key.valueWords(), key.bits());
}

void
ChainedHashTable::insert(const Key &key, uint64_t data)
{
    if (!key.fullySpecified())
        fatal("software hash table requires fully specified keys");
    auto &chain = chains[bucketOf(key)];
    for (Node &node : chain) {
        if (node.key == key) {
            node.data = data;
            return;
        }
    }
    chain.push_back(Node{key, data});
    ++count;
}

std::optional<uint64_t>
ChainedHashTable::find(const Key &key)
{
    ++findCount;
    const auto &chain = chains[bucketOf(key)];
    for (const Node &node : chain) {
        ++accesses;
        if (node.key == key)
            return node.data;
    }
    return std::nullopt;
}

bool
ChainedHashTable::erase(const Key &key)
{
    auto &chain = chains[bucketOf(key)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].key == key) {
            chain.erase(chain.begin() + static_cast<long>(i));
            --count;
            return true;
        }
    }
    return false;
}

double
ChainedHashTable::meanAccessesPerFind() const
{
    return findCount == 0
        ? 0.0
        : static_cast<double>(accesses) / static_cast<double>(findCount);
}

double
ChainedHashTable::loadFactor() const
{
    return chains.empty()
        ? 0.0
        : static_cast<double>(count) / static_cast<double>(chains.size());
}

} // namespace caram::baseline
